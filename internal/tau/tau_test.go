package tau

import (
	"math"
	"testing"
	"time"

	"envmon/internal/msr"
	"envmon/internal/rapl"
	"envmon/internal/workload"
)

func newProfiler(t *testing.T) (*Profiler, *rapl.Socket) {
	t.Helper()
	socket := rapl.NewSocket(rapl.Config{Name: "tau", Seed: 42})
	drv := socket.Driver(1)
	drv.Load()
	dev, err := drv.Open(0, msr.Root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfiler(dev)
	if err != nil {
		t.Fatal(err)
	}
	return p, socket
}

func TestBasicTimer(t *testing.T) {
	p, socket := newProfiler(t)
	socket.Run(workload.GaussElim(60*time.Second), 0)

	if err := p.Start("main", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.Running(); got != "main" {
		t.Errorf("Running = %q", got)
	}
	if err := p.Stop("main", 25*time.Second); err != nil {
		t.Fatal(err)
	}
	prof, err := p.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 1 {
		t.Fatalf("profile = %+v", prof)
	}
	m := prof[0]
	if m.Calls != 1 || m.Inclusive != 20*time.Second || m.Exclusive != 20*time.Second {
		t.Errorf("timer = %+v", m)
	}
	// gauss package power ~47 W over 20 s -> ~940 J
	if m.InclusiveJ < 850 || m.InclusiveJ > 1050 {
		t.Errorf("energy = %.0f J, want ~940", m.InclusiveJ)
	}
	if mp := m.MeanPower(); mp < 40 || mp > 56 {
		t.Errorf("mean power = %.1f W", mp)
	}
}

func TestNestingExclusiveAccounting(t *testing.T) {
	p, socket := newProfiler(t)
	socket.Run(workload.FixedRuntime(2*time.Minute), 0)

	// main [0, 60s] contains solver [10s, 40s]
	if err := p.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Start("solver", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop("solver", 40*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop("main", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	prof, err := p.Profile()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Timer{}
	for _, tm := range prof {
		byName[tm.Name] = tm
	}
	main, solver := byName["main"], byName["solver"]
	if main.Inclusive != 60*time.Second || main.Exclusive != 30*time.Second {
		t.Errorf("main = %+v", main)
	}
	if solver.Inclusive != 30*time.Second || solver.Exclusive != 30*time.Second {
		t.Errorf("solver = %+v", solver)
	}
	// energy conservation: main inclusive = main exclusive + solver inclusive
	if math.Abs(main.InclusiveJ-(main.ExclusiveJ+solver.InclusiveJ)) > 1e-6 {
		t.Errorf("energy not conserved: %v != %v + %v",
			main.InclusiveJ, main.ExclusiveJ, solver.InclusiveJ)
	}
	// profile sorted by exclusive time: main (30s) then solver (30s) — tie
	// broken by name; both 30s, "main" < "solver"
	if prof[0].Name != "main" {
		t.Errorf("sort order: %v", []string{prof[0].Name, prof[1].Name})
	}
}

func TestImproperNestingRejected(t *testing.T) {
	p, _ := newProfiler(t)
	p.Start("a", 0)
	p.Start("b", time.Second)
	if err := p.Stop("a", 2*time.Second); err == nil {
		t.Fatal("out-of-order Stop accepted")
	}
	if err := p.Stop("b", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop("a", 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveStartRejected(t *testing.T) {
	p, _ := newProfiler(t)
	p.Start("f", 0)
	if err := p.Start("f", time.Second); err == nil {
		t.Fatal("recursive Start accepted")
	}
}

func TestStopWithoutStart(t *testing.T) {
	p, _ := newProfiler(t)
	if err := p.Stop("ghost", time.Second); err == nil {
		t.Fatal("Stop without Start accepted")
	}
}

func TestStopBeforeStartTime(t *testing.T) {
	p, _ := newProfiler(t)
	p.Start("x", 10*time.Second)
	if err := p.Stop("x", 5*time.Second); err == nil {
		t.Fatal("backward Stop accepted")
	}
}

func TestProfileWithRunningTimers(t *testing.T) {
	p, _ := newProfiler(t)
	p.Start("open", 0)
	if _, err := p.Profile(); err == nil {
		t.Fatal("Profile with running timer succeeded")
	}
}

func TestRepeatedCallsAccumulate(t *testing.T) {
	p, socket := newProfiler(t)
	socket.Run(workload.FixedRuntime(time.Minute), 0)
	for i := 0; i < 5; i++ {
		start := time.Duration(i) * 10 * time.Second
		if err := p.Start("loop", start); err != nil {
			t.Fatal(err)
		}
		if err := p.Stop("loop", start+2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	prof, _ := p.Profile()
	if prof[0].Calls != 5 || prof[0].Inclusive != 10*time.Second {
		t.Errorf("accumulated = %+v", prof[0])
	}
}

func TestRAPLOnlyBackend(t *testing.T) {
	// TAU's power support is RAPL-only; the constructor requires a
	// readable RAPL unit register. A device without one must fail.
	rf := msr.NewRegisterFile() // empty: no RAPL MSRs
	drv := msr.NewDriver(map[int]*msr.RegisterFile{0: rf})
	drv.Load()
	dev, err := drv.Open(0, msr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfiler(dev); err == nil {
		t.Fatal("profiler created without RAPL MSRs")
	}
}

func TestNonRootReadOnlyHandleWorks(t *testing.T) {
	// TAU only reads; a read-only (chmod a+r) handle suffices.
	socket := rapl.NewSocket(rapl.Config{Name: "ro", Seed: 1})
	drv := socket.Driver(1)
	drv.Load()
	if err := drv.SetWorldReadable(true); err != nil {
		t.Fatal(err)
	}
	dev, err := drv.Open(0, msr.Credentials{UID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfiler(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start("region", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop("region", time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMeanPowerZeroDivision(t *testing.T) {
	if (Timer{}).MeanPower() != 0 {
		t.Error("zero-duration MeanPower should be 0")
	}
}
