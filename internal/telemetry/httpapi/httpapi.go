// Package httpapi serves a telemetry.Store over HTTP/JSON — the wire layer
// of the envmond daemon. It also defines the JSON document types, which
// the client package shares, so the two sides cannot drift.
//
// Endpoints (all GET):
//
//	/healthz  liveness + store counters + the simulation's current time
//	/series   every stored series with unit and sample counts
//	/query    frames for matching series over a window
//	/topk     nodes ranked by mean power over a window
//
// Durations in query parameters use Go syntax ("90s", "5m"); timestamps in
// responses are nanoseconds since the simulation epoch, matching the trace
// CSV encoding.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"envmon/internal/obs"
	"envmon/internal/telemetry"
)

// SourceHealth is one member of a collection chain: the access method and
// its circuit breaker's position.
type SourceHealth struct {
	Method string `json:"method"`
	State  string `json:"state"` // closed | open | half-open
	Trips  int    `json:"trips"`
}

// BackendHealth is one resilient collection chain's state on one node.
type BackendHealth struct {
	Node    string         `json:"node,omitempty"`
	Method  string         `json:"method"` // the chain's primary method
	Sources []SourceHealth `json:"sources"`
}

// StorageHealth is the persistence section of /healthz, present when the
// daemon runs with a data directory: the block and journal tiers' sizes
// plus what the last restart recovered.
type StorageHealth struct {
	DataDir          string `json:"data_dir"`
	Blocks           int    `json:"blocks"`
	BlockBytes       int64  `json:"block_bytes"`
	WALBytes         int64  `json:"wal_bytes"`
	Compactions      uint64 `json:"compactions"`
	ReadErrors       uint64 `json:"read_errors,omitempty"`
	RecoveredSeries  int    `json:"recovered_series,omitempty"`
	RecoveredSamples uint64 `json:"recovered_samples,omitempty"`
	RecoveredGaps    uint64 `json:"recovered_gaps,omitempty"`
	LostRecords      uint64 `json:"lost_records,omitempty"`
}

// Health is the /healthz document. Status is "ok", or "degraded" when any
// reported breaker is open — the daemon is still serving, but some backend
// is down and its series are accumulating gaps instead of samples. A
// federation front-end (envfedd) serves the same document with the
// counters summed across members and the Federation section filled in.
type Health struct {
	Status     string            `json:"status"`
	Series     int               `json:"series"`
	Samples    uint64            `json:"samples"`
	Gaps       uint64            `json:"gaps"`
	SimNowNS   int64             `json:"sim_now_ns"`
	Faults     string            `json:"faults,omitempty"` // active fault plan, if injecting
	Storage    *StorageHealth    `json:"storage,omitempty"`
	Backends   []BackendHealth   `json:"backends,omitempty"`
	Federation *FederationHealth `json:"federation,omitempty"`
}

// FederationHealth is the federation section of a front-end's /healthz:
// how many downstream daemons it fans out to and which did not answer.
type FederationHealth struct {
	Members   int             `json:"members"`
	Healthy   int             `json:"healthy"`
	Degraded  int             `json:"degraded,omitempty"` // members answering but self-reporting degraded
	Missing   []MissingMember `json:"missing,omitempty"`
	SimSkewNS int64           `json:"sim_skew_ns,omitempty"` // max − min member sim-now
}

// MissingMember is one downstream daemon a federated response could not
// include: the member-level analogue of a gap marker. A response carrying
// MissingMember entries is explicitly partial — never a silent zero.
type MissingMember struct {
	Member string `json:"member"`
	URL    string `json:"url,omitempty"`
	Reason string `json:"reason"`          // last error, or "breaker open"
	State  string `json:"state,omitempty"` // breaker position
}

// Degraded is the partial-result section attached to /query and /topk
// documents when at least one member was unreachable. Responded counts the
// members whose data the document does include.
type Degraded struct {
	Members   int             `json:"members"`
	Responded int             `json:"responded"`
	Missing   []MissingMember `json:"missing"`
}

// MemberInfo is one entry of a federation front-end's /members document.
type MemberInfo struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	State     string `json:"state"` // breaker position: closed | open | half-open
	Trips     int    `json:"trips"`
	LastError string `json:"last_error,omitempty"`
}

// MembersResult is the /members document.
type MembersResult struct {
	Members []MemberInfo `json:"members"`
}

// SeriesInfo is one entry of the /series document. Persisted reports how
// many leading samples are sealed on disk (absent on a memory-only store);
// OldestNS is the oldest retrievable sample — with a data directory that
// is the series' first sample ever, since blocks retain evicted history.
type SeriesInfo struct {
	Node      string `json:"node"`
	Backend   string `json:"backend"`
	Domain    string `json:"domain"`
	Unit      string `json:"unit"`
	Samples   uint64 `json:"samples"`
	Gaps      uint64 `json:"gaps,omitempty"`
	Persisted uint64 `json:"persisted,omitempty"`
	OldestNS  int64  `json:"oldest_ns"`
	NewestNS  int64  `json:"newest_ns"`
}

// SeriesResult is the /series document.
type SeriesResult struct {
	Series []SeriesInfo `json:"series"`
}

// Point is one frame point: a raw sample or one rollup bucket.
type Point struct {
	TNS   int64   `json:"t_ns"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
	Count int     `json:"count"`
}

// Frame is one series' result in the /query document. GapsNS marks the
// failed-poll instants inside the window: explicit "no data here" markers,
// never encoded as zero-valued points.
type Frame struct {
	Node       string   `json:"node"`
	Backend    string   `json:"backend"`
	Domain     string   `json:"domain"`
	Unit       string   `json:"unit"`
	Resolution string   `json:"resolution"`
	Reduced    *float64 `json:"reduced,omitempty"`
	Points     []Point  `json:"points"`
	GapsNS     []int64  `json:"gaps_ns,omitempty"`
}

// QueryResult is the /query document. SimNowNS and NewestNS are the
// response's freshness metadata: the server's simulated now at answer
// time and the newest point timestamp across the returned frames (0 when
// no frame has points) — together they let a caller distinguish "fresh
// zero" from "stale frame" without a second /healthz round trip. On a
// federated endpoint SimNowNS is the minimum across answering members
// (the conservative view: data can be no fresher than the laggiest
// member's clock) and Degraded is present when a member was unreachable.
type QueryResult struct {
	Frames   []Frame   `json:"frames"`
	SimNowNS int64     `json:"sim_now_ns,omitempty"`
	NewestNS int64     `json:"newest_ns,omitempty"`
	Degraded *Degraded `json:"degraded,omitempty"`
}

// NodePower is one entry of the /topk ranking.
type NodePower struct {
	Node   string  `json:"node"`
	Watts  float64 `json:"watts"`
	Series int     `json:"series"`
}

// TopKResult is the /topk document. SimNowNS is the server's simulated
// now at answer time (on a federated endpoint, the minimum across
// answering members); Degraded is present only on a federated endpoint
// that could not reach every member.
type TopKResult struct {
	Domain     string      `json:"domain"`
	TotalWatts float64     `json:"total_watts"`
	SimNowNS   int64       `json:"sim_now_ns,omitempty"`
	Nodes      []NodePower `json:"nodes"`
	Degraded   *Degraded   `json:"degraded,omitempty"`
}

// ErrorBody is the JSON body of every non-200 response.
type ErrorBody struct {
	Error string `json:"error"`
}

// MaxTopK bounds the /topk k parameter: a ranking is for operators
// eyeballing the worst offenders, and a request for millions of rows is a
// typo or an abuse, not a question. (k=0, "rank everyone", stays valid —
// the result is bounded by the node count.) Exported because the
// federation front-end enforces the same bound before fanning out.
const MaxTopK = 10000

// Server serves a store. It implements http.Handler.
type Server struct {
	store    *telemetry.Store
	now      func() time.Duration
	breakers func() []BackendHealth
	faults   string
	mux      *http.ServeMux

	// obs and accessLog share one timing path in ServeHTTP: requests are
	// wrapped in a status-capturing writer only when at least one of them
	// is set, so an unobserved server serves exactly as before. Both are
	// wiring-time settings, installed before the server is shared.
	obs       *serverObs
	accessLog func(method, path string, status int, d time.Duration, bytes int64)

	// closing turns data-plane requests into immediate 503s once the
	// daemon has begun shutting down, so a query racing Store.Close gets a
	// JSON error instead of a hung or half-served connection.
	closing atomic.Bool
}

// serverObs holds the per-endpoint metric handles, interned at
// Instrument time so the request path never touches the registry lock
// (except on error responses, which intern a per-status counter).
type serverObs struct {
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
	bytes    *obs.Counter
}

// endpoints are the label values of the per-endpoint metrics; paths
// outside the API surface fold into "other" so cardinality is bounded no
// matter what clients probe.
var endpoints = []string{"healthz", "series", "query", "topk", "metrics", "other"}

func endpointLabel(path string) string {
	switch path {
	case "/healthz", "/series", "/query", "/topk", "/metrics":
		return path[1:]
	default:
		return "other"
	}
}

// New returns a server over store. now, when non-nil, reports the
// simulation's current time for /healthz (e.g. a clock group's Now); nil
// reports zero.
func New(store *telemetry.Store, now func() time.Duration) *Server {
	s := &Server{store: store, now: now, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/series", s.handleSeries)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/topk", s.handleTopK)
	return s
}

// StartClosing flips the server into shutdown mode: every subsequent
// data-plane request (/series, /query, /topk) is answered immediately
// with a 503 JSON error. Call when shutdown begins, before the store
// closes — it makes the "query races SIGTERM" window an explicit error
// instead of a connection that hangs in http.Server.Shutdown's drain.
func (s *Server) StartClosing() { s.closing.Store(true) }

// unavailable answers a data-plane request during shutdown; it reports
// whether the request was intercepted.
func (s *Server) unavailable(w http.ResponseWriter) bool {
	if !s.closing.Load() && !s.store.Closed() {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "store is closing"})
	return true
}

// SetBreakers installs a provider of per-backend breaker state for
// /healthz. The provider is called per request and must be safe for
// concurrent use (resilience chains guard their status with a lock).
func (s *Server) SetBreakers(f func() []BackendHealth) { s.breakers = f }

// SetFaults records the active fault-injection plan for /healthz, so an
// operator can tell a chaos drill from a real outage.
func (s *Server) SetFaults(plan string) { s.faults = plan }

// Instrument registers per-endpoint request metrics in reg and mounts
// reg's /metrics exposition on the server's mux. Call at wiring time,
// before the server is shared.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o := &serverObs{reg: reg, endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, ep := range endpoints {
		o.endpoints[ep] = &endpointMetrics{
			requests: reg.Counter("envmon_http_requests_total",
				"HTTP requests served, by endpoint.", "endpoint", ep),
			latency: reg.Histogram("envmon_http_request_seconds",
				"HTTP request handling latency, by endpoint.", obs.DefLatencyBuckets, "endpoint", ep),
			bytes: reg.Counter("envmon_http_response_bytes_total",
				"HTTP response body bytes written, by endpoint.", "endpoint", ep),
		}
	}
	s.obs = o
	s.mux.Handle("/metrics", reg.Handler())
}

// SetAccessLog installs a structured access-log callback sharing the
// metrics' timing path: one clock read per request serves both. The
// callback runs on the request goroutine and must be safe for concurrent
// use. Call at wiring time.
func (s *Server) SetAccessLog(f func(method, path string, status int, d time.Duration, bytes int64)) {
	s.accessLog = f
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil && s.accessLog == nil {
		s.serve(w, r)
		return
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.serve(sw, r)
	d := time.Since(start)
	ep := endpointLabel(r.URL.Path)
	if o := s.obs; o != nil {
		em := o.endpoints[ep]
		em.requests.Inc()
		em.latency.ObserveDuration(d)
		em.bytes.Add(uint64(sw.bytes))
		if sw.status >= 400 {
			// Interned on first occurrence per (endpoint, code): error
			// responses are off the hot path, and enumerating every status
			// code upfront would be cardinality for nothing.
			o.reg.Counter("envmon_http_errors_total",
				"HTTP error responses, by endpoint and status code.",
				"endpoint", ep, "code", strconv.Itoa(sw.status)).Inc()
		}
	}
	if s.accessLog != nil {
		s.accessLog(r.Method, r.URL.Path, sw.status, d, sw.bytes)
	}
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: "GET only"})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the response status and body size for the
// metrics and access-log paths.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(doc)
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:  "ok",
		Series:  s.store.NumSeries(),
		Samples: s.store.Samples(),
		Gaps:    s.store.Gaps(),
		Faults:  s.faults,
	}
	if s.now != nil {
		h.SimNowNS = int64(s.now())
	}
	if stats := s.store.StorageStats(); stats.Persistent {
		h.Storage = &StorageHealth{
			DataDir:          stats.DataDir,
			Blocks:           stats.Blocks,
			BlockBytes:       stats.BlockBytes,
			WALBytes:         stats.WALBytes,
			Compactions:      stats.Compactions,
			ReadErrors:       stats.ReadErrors,
			RecoveredSeries:  stats.Recovery.Series,
			RecoveredSamples: stats.Recovery.Samples,
			RecoveredGaps:    stats.Recovery.Gaps,
			LostRecords:      stats.Recovery.Lost,
		}
	}
	if s.breakers != nil {
		h.Backends = s.breakers()
		// Chains register concurrently at startup, so the provider's order
		// is nondeterministic; sort so /healthz is byte-stable across
		// requests and restarts (scrapers and tests diff it).
		sort.Slice(h.Backends, func(i, j int) bool {
			if h.Backends[i].Node != h.Backends[j].Node {
				return h.Backends[i].Node < h.Backends[j].Node
			}
			return h.Backends[i].Method < h.Backends[j].Method
		})
		for _, b := range h.Backends {
			for _, src := range b.Sources {
				if src.State == "open" {
					h.Status = "degraded"
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.unavailable(w) {
		return
	}
	infos := s.store.Series()
	out := SeriesResult{Series: make([]SeriesInfo, 0, len(infos))}
	for _, si := range infos {
		out.Series = append(out.Series, SeriesInfo{
			Node: si.Key.Node, Backend: si.Key.Backend, Domain: si.Key.Domain,
			Unit: si.Unit, Samples: si.Samples, Gaps: si.Gaps, Persisted: si.Persisted,
			OldestNS: int64(si.Oldest), NewestNS: int64(si.Newest),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ParseWindow reads the from/to parameters (Go duration syntax; empty
// means unbounded). Exported because the federation front-end validates
// the same wire grammar before fanning a query out.
func ParseWindow(r *http.Request) (from, to time.Duration, err error) {
	if v := r.FormValue("from"); v != "" {
		from, err = time.ParseDuration(v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad from %q: %v", v, err)
		}
	}
	if v := r.FormValue("to"); v != "" {
		to, err = time.ParseDuration(v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad to %q: %v", v, err)
		}
	}
	return from, to, nil
}

// ParseDeadline reads the optional deadline_ms parameter: how long the
// caller is willing to wait for the result. Zero means no deadline.
func ParseDeadline(r *http.Request) (time.Duration, error) {
	v := r.FormValue("deadline_ms")
	if v == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("bad deadline_ms %q: must be a positive integer", v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// runGuarded computes a response under an optional deadline. With no
// deadline it runs inline. With one, the computation runs on its own
// goroutine and a deadline expiry answers 504 immediately — the caller
// gets a JSON error within its budget, never a connection held open by a
// slow store scan (the computation finishes and is discarded).
func runGuarded(w http.ResponseWriter, deadline time.Duration, compute func() (int, any)) {
	if deadline <= 0 {
		status, doc := compute()
		writeJSON(w, status, doc)
		return
	}
	type resp struct {
		status int
		doc    any
	}
	ch := make(chan resp, 1)
	go func() {
		status, doc := compute()
		ch <- resp{status, doc}
	}()
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case rp := <-ch:
		writeJSON(w, rp.status, rp.doc)
	case <-t.C:
		writeJSON(w, http.StatusGatewayTimeout,
			ErrorBody{Error: fmt.Sprintf("deadline %v exceeded", deadline)})
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.unavailable(w) {
		return
	}
	from, to, err := ParseWindow(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	deadline, err := ParseDeadline(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	res, err := telemetry.ParseResolution(r.FormValue("res"))
	if err != nil {
		badRequest(w, err)
		return
	}
	agg, err := telemetry.ParseAggregate(r.FormValue("agg"))
	if err != nil {
		badRequest(w, err)
		return
	}
	q := telemetry.Query{
		Node:       r.FormValue("node"),
		Backend:    r.FormValue("backend"),
		Domain:     r.FormValue("domain"),
		From:       from,
		To:         to,
		Resolution: res,
		Aggregate:  agg,
	}
	runGuarded(w, deadline, func() (int, any) {
		frames := s.store.Query(q)
		// A query returns one frame per matching series regardless of window,
		// so zero frames under a filter means the series key does not exist —
		// a 404, distinguishable from an empty window (200 with empty points).
		// An unfiltered query over an empty store stays 200: "nothing stored
		// yet" is a valid answer to "show me everything".
		if len(frames) == 0 && (q.Node != "" || q.Backend != "" || q.Domain != "") {
			return http.StatusNotFound, ErrorBody{Error: "no matching series"}
		}
		out := QueryResult{Frames: make([]Frame, 0, len(frames))}
		if s.now != nil {
			out.SimNowNS = int64(s.now())
		}
		for _, f := range frames {
			jf := frameDoc(f)
			if n := len(jf.Points); n > 0 && jf.Points[n-1].TNS > out.NewestNS {
				out.NewestNS = jf.Points[n-1].TNS
			}
			out.Frames = append(out.Frames, jf)
		}
		return http.StatusOK, out
	})
}

// frameDoc converts one store frame to its wire form.
func frameDoc(f telemetry.Frame) Frame {
	jf := Frame{
		Node: f.Key.Node, Backend: f.Key.Backend, Domain: f.Key.Domain,
		Unit: f.Unit, Resolution: f.Resolution.String(),
		Points: make([]Point, 0, len(f.Points)),
	}
	if f.ReducedOK {
		v := f.Reduced
		jf.Reduced = &v
	}
	for _, p := range f.Points {
		jf.Points = append(jf.Points, Point{
			TNS: int64(p.T), Min: p.Min, Max: p.Max, Mean: p.Mean, Last: p.Last, Count: p.Count,
		})
	}
	for _, g := range f.Gaps {
		jf.GapsNS = append(jf.GapsNS, int64(g))
	}
	return jf
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.unavailable(w) {
		return
	}
	from, to, err := ParseWindow(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	deadline, err := ParseDeadline(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	res, err := telemetry.ParseResolution(r.FormValue("res"))
	if err != nil {
		badRequest(w, err)
		return
	}
	k := 10
	if v := r.FormValue("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil {
			badRequest(w, fmt.Errorf("bad k %q: %v", v, err))
			return
		}
		if k < 0 {
			badRequest(w, fmt.Errorf("bad k %d: must be non-negative", k))
			return
		}
		if k > MaxTopK {
			badRequest(w, fmt.Errorf("bad k %d: exceeds maximum %d", k, MaxTopK))
			return
		}
	}
	domain := r.FormValue("domain")
	runGuarded(w, deadline, func() (int, any) {
		ranked, total := s.store.TopK(k, domain, from, to, res)
		outDomain := domain
		if outDomain == "" {
			outDomain = "Total Power"
		}
		out := TopKResult{Domain: outDomain, TotalWatts: total, Nodes: make([]NodePower, 0, len(ranked))}
		if s.now != nil {
			out.SimNowNS = int64(s.now())
		}
		for _, np := range ranked {
			out.Nodes = append(out.Nodes, NodePower{Node: np.Node, Watts: np.Watts, Series: np.Series})
		}
		return http.StatusOK, out
	})
}
