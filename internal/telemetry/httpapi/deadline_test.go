package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseDeadline(t *testing.T) {
	mk := func(q string) *http.Request { return httptest.NewRequest("GET", "/query?"+q, nil) }
	if d, err := ParseDeadline(mk("")); err != nil || d != 0 {
		t.Fatalf("no deadline_ms: %v %v", d, err)
	}
	if d, err := ParseDeadline(mk("deadline_ms=250")); err != nil || d != 250*time.Millisecond {
		t.Fatalf("deadline_ms=250: %v %v", d, err)
	}
	for _, bad := range []string{"deadline_ms=0", "deadline_ms=-1", "deadline_ms=soon"} {
		if _, err := ParseDeadline(mk(bad)); err == nil {
			t.Errorf("%s: want error", bad)
		}
	}
}

func TestDeadlineMSRejectedOnWire(t *testing.T) {
	srv := New(testStore(t), nil)
	for _, path := range []string{"/query?deadline_ms=nope", "/topk?deadline_ms=-2"} {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400: %s", path, w.Code, w.Body)
		}
	}
}

func TestRunGuardedDeadlineAnswers504(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	w := httptest.NewRecorder()
	start := time.Now()
	runGuarded(w, 20*time.Millisecond, func() (int, any) {
		<-block // a store scan slower than the caller's budget
		return http.StatusOK, QueryResult{}
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("guard did not fire: took %v", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Fatalf("504 body not a JSON error: %s", w.Body)
	}
}

func TestRunGuardedFastPathAnswersInline(t *testing.T) {
	w := httptest.NewRecorder()
	runGuarded(w, time.Second, func() (int, any) { return http.StatusOK, TopKResult{Domain: "d"} })
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
}

// TestClosingAnswers503 covers the shutdown race: once StartClosing is
// called (or the store is closed under the server), every data-plane
// request gets an immediate 503 JSON error instead of a hung connection
// or a read against dismantled persistence tiers.
func TestClosingAnswers503(t *testing.T) {
	st := testStore(t)
	srv := New(st, nil)

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/query", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("pre-close query: status %d", w.Code)
	}

	srv.StartClosing()
	for _, path := range []string{"/query", "/topk", "/series"} {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("GET %s while closing: status %d, want 503: %s", path, w.Code, w.Body)
		}
		var eb ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("GET %s: 503 body not a JSON error: %s", path, w.Body)
		}
	}

	// /healthz stays up through the drain — it is how an operator watches
	// the shutdown.
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("healthz while closing: status %d", w.Code)
	}
}

// TestClosedStoreAnswers503 is the same guard keyed off the store itself:
// even without StartClosing, a closed store never serves silent reads.
func TestClosedStoreAnswers503(t *testing.T) {
	st := testStore(t)
	srv := New(st, nil)
	st.Close()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/topk", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("query on closed store: status %d, want 503: %s", w.Code, w.Body)
	}
}
