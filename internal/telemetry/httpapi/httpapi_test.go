package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"envmon/internal/telemetry"
)

func testStore(t *testing.T) *telemetry.Store {
	t.Helper()
	st := telemetry.New(telemetry.Options{Shards: 4})
	for i, node := range []string{"n00", "n01", "n02"} {
		k := telemetry.SeriesKey{Node: node, Backend: "MSR", Domain: "Total Power"}
		for s := 0; s < 10; s++ {
			at := time.Duration(s) * time.Second
			if err := st.Ingest(k, "W", at, 100+10*float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

func get(t *testing.T, srv *Server, target string, wantStatus int, doc any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", target, rec.Code, wantStatus, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type = %q", target, ct)
	}
	if doc != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), doc); err != nil {
			t.Fatalf("GET %s: decoding: %v", target, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := New(testStore(t), func() time.Duration { return 90 * time.Second })
	var h Health
	get(t, srv, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Series != 3 || h.Samples != 30 {
		t.Errorf("health = %+v", h)
	}
	if h.SimNowNS != int64(90*time.Second) {
		t.Errorf("sim_now_ns = %d", h.SimNowNS)
	}
	// nil now func reports zero rather than panicking.
	var h2 Health
	get(t, New(testStore(t), nil), "/healthz", http.StatusOK, &h2)
	if h2.SimNowNS != 0 {
		t.Errorf("nil-now sim_now_ns = %d", h2.SimNowNS)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	srv := New(testStore(t), nil)
	var out SeriesResult
	get(t, srv, "/series", http.StatusOK, &out)
	if len(out.Series) != 3 {
		t.Fatalf("series = %+v", out.Series)
	}
	si := out.Series[0]
	if si.Node != "n00" || si.Backend != "MSR" || si.Domain != "Total Power" ||
		si.Unit != "W" || si.Samples != 10 || si.NewestNS != int64(9*time.Second) {
		t.Errorf("series[0] = %+v", si)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := New(testStore(t), nil)

	var out QueryResult
	get(t, srv, "/query?node=n01&res=1s&agg=mean&from=2s&to=5s", http.StatusOK, &out)
	if len(out.Frames) != 1 {
		t.Fatalf("frames = %+v", out.Frames)
	}
	f := out.Frames[0]
	if f.Node != "n01" || f.Resolution != "1s" || len(f.Points) != 3 {
		t.Errorf("frame = %+v", f)
	}
	if f.Reduced == nil || *f.Reduced != 110 {
		t.Errorf("reduced = %v, want 110", f.Reduced)
	}
	if f.Points[0].TNS != int64(2*time.Second) || f.Points[0].Count != 1 {
		t.Errorf("points[0] = %+v", f.Points[0])
	}
	// No aggregate requested: reduced omitted from the JSON.
	req := httptest.NewRequest(http.MethodGet, "/query?node=n01", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var raw struct {
		Frames []map[string]json.RawMessage `json:"frames"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Frames[0]["reduced"]; ok {
		t.Error("reduced present without an aggregate")
	}
}

func TestTopKEndpoint(t *testing.T) {
	srv := New(testStore(t), nil)
	var out TopKResult
	get(t, srv, "/topk?k=2&res=1s", http.StatusOK, &out)
	if out.Domain != "Total Power" || len(out.Nodes) != 2 {
		t.Fatalf("topk = %+v", out)
	}
	if out.Nodes[0].Node != "n02" || out.Nodes[0].Watts != 120 {
		t.Errorf("nodes[0] = %+v", out.Nodes[0])
	}
	if out.TotalWatts != 100+110+120 {
		t.Errorf("total = %v", out.TotalWatts)
	}
}

func TestBadRequests(t *testing.T) {
	srv := New(testStore(t), nil)
	for _, target := range []string{
		"/query?from=yesterday",
		"/query?res=5m",
		"/query?agg=p99",
		"/topk?k=lots",
		"/topk?to=late",
	} {
		var eb ErrorBody
		get(t, srv, target, http.StatusBadRequest, &eb)
		if eb.Error == "" {
			t.Errorf("GET %s: empty error body", target)
		}
	}
	// Non-GET methods are rejected wholesale.
	req := httptest.NewRequest(http.MethodPost, "/query", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /query: status %d, want 405", rec.Code)
	}
}
