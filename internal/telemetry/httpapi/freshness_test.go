package httpapi

import (
	"net/http"
	"testing"
	"time"
)

// TestQueryFreshnessMetadata checks /query stamps the server's simulated
// now and the newest returned point, the raw material a power-capping
// consumer needs to judge data age.
func TestQueryFreshnessMetadata(t *testing.T) {
	srv := New(testStore(t), func() time.Duration { return 42 * time.Second })
	var out QueryResult
	get(t, srv, "/query?node=n01", http.StatusOK, &out)
	if out.SimNowNS != int64(42*time.Second) {
		t.Errorf("sim_now_ns = %d, want %d", out.SimNowNS, int64(42*time.Second))
	}
	// testStore ingests points at 0..9 s; the newest is 9 s.
	if out.NewestNS != int64(9*time.Second) {
		t.Errorf("newest_ns = %d, want %d", out.NewestNS, int64(9*time.Second))
	}

	// A server with no simulation clock omits sim-now but still reports
	// the newest point.
	srv = New(testStore(t), nil)
	var out2 QueryResult
	get(t, srv, "/query?node=n01", http.StatusOK, &out2)
	if out2.SimNowNS != 0 {
		t.Errorf("nil-now sim_now_ns = %d", out2.SimNowNS)
	}
	if out2.NewestNS != int64(9*time.Second) {
		t.Errorf("nil-now newest_ns = %d", out2.NewestNS)
	}
}

// TestTopKFreshnessMetadata checks /topk carries sim-now too.
func TestTopKFreshnessMetadata(t *testing.T) {
	srv := New(testStore(t), func() time.Duration { return 7 * time.Second })
	var out TopKResult
	get(t, srv, "/topk?k=3", http.StatusOK, &out)
	if out.SimNowNS != int64(7*time.Second) {
		t.Errorf("sim_now_ns = %d, want %d", out.SimNowNS, int64(7*time.Second))
	}
}
