package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"envmon/internal/obs"
	"envmon/internal/telemetry"
)

func instrumentedServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	srv := New(testStore(t), nil)
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	return srv, reg
}

func metricsText(t *testing.T, srv *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("GET /metrics: Content-Type = %q", ct)
	}
	return rec.Body.String()
}

func TestMetricsEndpointAndRequestAccounting(t *testing.T) {
	srv, _ := instrumentedServer(t)
	var h Health
	get(t, srv, "/healthz", http.StatusOK, &h)
	get(t, srv, "/healthz", http.StatusOK, &h)
	var q QueryResult
	get(t, srv, "/query?node=n01", http.StatusOK, &q)

	out := metricsText(t, srv)
	for _, want := range []string{
		`envmon_http_requests_total{endpoint="healthz"} 2`,
		`envmon_http_requests_total{endpoint="query"} 1`,
		`envmon_http_requests_total{endpoint="topk"} 0`,
		`envmon_http_request_seconds_count{endpoint="healthz"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	// Response bytes were counted for the served endpoints.
	if strings.Contains(out, `envmon_http_response_bytes_total{endpoint="healthz"} 0`) {
		t.Error("healthz response bytes not counted")
	}
}

// TestErrorPathsCountAndStatus is the satellite requirement: every error
// path must produce both the right status code and an incremented error
// counter.
func TestErrorPathsCountAndStatus(t *testing.T) {
	srv, _ := instrumentedServer(t)

	cases := []struct {
		target string
		status int
	}{
		{"/query?from=yesterday", http.StatusBadRequest},
		{"/query?res=5m", http.StatusBadRequest},
		{"/query?agg=p99", http.StatusBadRequest},
		{"/query?node=no-such-node", http.StatusNotFound},
		{"/query?domain=No+Such+Domain", http.StatusNotFound},
		{"/topk?k=lots", http.StatusBadRequest},
		{"/topk?k=-1", http.StatusBadRequest},
		{"/topk?k=1000001", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var eb ErrorBody
		get(t, srv, tc.target, tc.status, &eb)
		if eb.Error == "" {
			t.Errorf("GET %s: empty error body", tc.target)
		}
	}

	out := metricsText(t, srv)
	for _, want := range []string{
		`envmon_http_errors_total{code="400",endpoint="query"} 3`,
		`envmon_http_errors_total{code="404",endpoint="query"} 2`,
		`envmon_http_errors_total{code="400",endpoint="topk"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestQueryUnfilteredEmptyStoreStays200(t *testing.T) {
	srv := New(telemetry.New(telemetry.Options{}), nil)
	var out QueryResult
	get(t, srv, "/query", http.StatusOK, &out)
	if len(out.Frames) != 0 {
		t.Errorf("frames = %+v", out.Frames)
	}
	// But a filter over an empty store is a 404: the key does not exist.
	var eb ErrorBody
	get(t, srv, "/query?node=n00", http.StatusNotFound, &eb)
}

func TestTopKZeroAndBoundaryK(t *testing.T) {
	srv := New(testStore(t), nil)
	// k=0 ranks every node.
	var out TopKResult
	get(t, srv, "/topk?k=0&res=1s", http.StatusOK, &out)
	if len(out.Nodes) != 3 {
		t.Fatalf("k=0 nodes = %+v", out.Nodes)
	}
	// The cap itself is accepted.
	get(t, srv, "/topk?k=10000&res=1s", http.StatusOK, &out)
}

func TestAccessLogSharesTimingPath(t *testing.T) {
	srv, _ := instrumentedServer(t)
	var mu sync.Mutex
	type entry struct {
		method, path string
		status       int
		d            time.Duration
		bytes        int64
	}
	var logged []entry
	srv.SetAccessLog(func(method, path string, status int, d time.Duration, bytes int64) {
		mu.Lock()
		logged = append(logged, entry{method, path, status, d, bytes})
		mu.Unlock()
	})

	var h Health
	get(t, srv, "/healthz", http.StatusOK, &h)
	var eb ErrorBody
	get(t, srv, "/query?node=nope", http.StatusNotFound, &eb)

	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 2 {
		t.Fatalf("logged = %+v", logged)
	}
	if logged[0].path != "/healthz" || logged[0].status != 200 || logged[0].bytes <= 0 || logged[0].d <= 0 {
		t.Errorf("logged[0] = %+v", logged[0])
	}
	if logged[1].path != "/query" || logged[1].status != 404 {
		t.Errorf("logged[1] = %+v", logged[1])
	}
}

// TestAccessLogWithoutInstrument exercises the timing path with only the
// access log set (no registry), the -access-log-without-debug-addr shape.
func TestAccessLogWithoutInstrument(t *testing.T) {
	srv := New(testStore(t), nil)
	var paths []string
	srv.SetAccessLog(func(_, path string, _ int, _ time.Duration, _ int64) {
		paths = append(paths, path)
	})
	var h Health
	get(t, srv, "/healthz", http.StatusOK, &h)
	if len(paths) != 1 || paths[0] != "/healthz" {
		t.Errorf("paths = %v", paths)
	}
}

func TestHealthzBackendsSorted(t *testing.T) {
	srv := New(testStore(t), nil)
	// Provider returns deliberately shuffled backends (simulating the
	// daemon's nondeterministic chain registration order).
	srv.SetBreakers(func() []BackendHealth {
		return []BackendHealth{
			{Node: "n02", Method: "NVML", Sources: []SourceHealth{{Method: "NVML", State: "closed"}}},
			{Node: "n00", Method: "SysMgmt API", Sources: []SourceHealth{{Method: "SysMgmt API", State: "closed"}}},
			{Node: "n00", Method: "EMON", Sources: []SourceHealth{{Method: "EMON", State: "closed"}}},
			{Node: "n01", Method: "MSR", Sources: []SourceHealth{{Method: "MSR", State: "closed"}}},
		}
	})
	var h Health
	get(t, srv, "/healthz", http.StatusOK, &h)
	want := [][2]string{{"n00", "EMON"}, {"n00", "SysMgmt API"}, {"n01", "MSR"}, {"n02", "NVML"}}
	if len(h.Backends) != len(want) {
		t.Fatalf("backends = %+v", h.Backends)
	}
	for i, b := range h.Backends {
		if b.Node != want[i][0] || b.Method != want[i][1] {
			t.Errorf("backends[%d] = %s/%s, want %s/%s", i, b.Node, b.Method, want[i][0], want[i][1])
		}
	}
}
