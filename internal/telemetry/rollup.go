package telemetry

import (
	"fmt"
	"time"

	"envmon/internal/telemetry/storage"
)

// Resolution selects which ladder level a query reads: the raw ring or one
// of the rollup levels.
type Resolution uint8

const (
	// Raw serves the per-sample ring.
	Raw Resolution = iota
	// Res1s serves 1-second rollup buckets.
	Res1s
	// Res10s serves 10-second rollup buckets.
	Res10s
	// Res60s serves 60-second rollup buckets.
	Res60s
)

// rollupPeriods holds the ladder's bucket widths, index-aligned with the
// series' rollup rings (Resolution r > Raw maps to level r-1). The widths
// are owned by the storage layer so block files agree with the head.
var rollupPeriods = storage.RollupPeriods

const numRollupLevels = storage.NumRollupLevels

// Period reports the bucket width of the resolution (0 for Raw).
func (r Resolution) Period() time.Duration {
	if r == Raw {
		return 0
	}
	return rollupPeriods[r-1]
}

func (r Resolution) String() string {
	switch r {
	case Raw:
		return "raw"
	case Res1s:
		return "1s"
	case Res10s:
		return "10s"
	case Res60s:
		return "60s"
	default:
		return fmt.Sprintf("Resolution(%d)", uint8(r))
	}
}

// ParseResolution is the inverse of String, for query parameters. The
// empty string selects Raw.
func ParseResolution(s string) (Resolution, error) {
	switch s {
	case "", "raw":
		return Raw, nil
	case "1s":
		return Res1s, nil
	case "10s":
		return Res10s, nil
	case "60s":
		return Res60s, nil
	default:
		return Raw, fmt.Errorf("telemetry: unknown resolution %q (raw|1s|10s|60s)", s)
	}
}

// series is one stored time series: the raw ring plus one bucket ring per
// rollup level, all preallocated. Access is guarded by the owning shard's
// lock.
//
// The persistence fields track the series' position against the storage
// engine's count seam. Every sample has an absolute index 0,1,2,… from
// first ingest (count is one past the newest); persisted says how many
// leading samples are sealed in blocks, and the compaction pressure checks
// keep every unpersisted sample resident in the ring. Gap markers and
// rollup buckets carry the same bookkeeping (a bucket's absolute index is
// the order the series opened it at that level). In a memory-only store
// the watermarks stay 0 and the seam degenerates to "serve the rings".
type series struct {
	key      SeriesKey
	unit     string
	raw      pointRing
	roll     [numRollupLevels]bucketRing
	gaps     gapRing
	minT     time.Duration // first sample ever (valid when count > 0)
	lastT    time.Duration
	lastGapT time.Duration
	count    uint64
	gapCount uint64

	persisted        uint64                  // leading samples sealed in blocks
	gapsPersisted    uint64                  // leading gap markers sealed in blocks
	bucketsTotal     [numRollupLevels]uint64 // buckets ever opened per level
	bucketsPersisted [numRollupLevels]uint64 // leading sealed buckets in blocks

	walRef   uint64 // series ref in the shard's current WAL segment
	walEpoch uint64 // shard walEpoch the ref belongs to (0 = undeclared)
}

func newSeries(key SeriesKey, unit string, opts Options) *series {
	s := &series{key: key, unit: unit,
		raw:  newPointRing(opts.RawCapacity),
		gaps: newGapRing(opts.GapCapacity)}
	for i := range s.roll {
		s.roll[i] = newBucketRing(opts.RollupCapacity)
	}
	return s
}

// append records one sample and updates every rollup level incrementally:
// either the open tail bucket absorbs the sample or a new bucket is pushed.
// The caller has already checked time order; t >= lastT holds.
func (s *series) append(t time.Duration, v float64) {
	if s.count == 0 {
		s.minT = t
	}
	s.raw.push(Point{T: t, V: v})
	s.lastT = t
	s.count++
	for i, period := range rollupPeriods {
		start := t - t%period
		rb := &s.roll[i]
		if b := rb.tail(); b != nil && b.Start == start {
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
			b.Sum += v
			b.Last = v
			b.Count++
			continue
		}
		rb.push(Bucket{Start: start, Count: 1, Min: v, Max: v, Sum: v, Last: v})
		s.bucketsTotal[i]++
	}
}
