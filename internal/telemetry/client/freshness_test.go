package client

import (
	"testing"
	"time"

	"envmon/internal/telemetry/httpapi"
)

func TestFreshness(t *testing.T) {
	sec := func(s int) int64 { return int64(time.Duration(s) * time.Second) }
	cases := []struct {
		name    string
		res     httpapi.QueryResult
		wantAge time.Duration
		wantOK  bool
	}{
		{"normal", httpapi.QueryResult{SimNowNS: sec(90), NewestNS: sec(80)}, 10 * time.Second, true},
		{"exact", httpapi.QueryResult{SimNowNS: sec(5), NewestNS: sec(5)}, 0, true},
		// Federated sim-now is the minimum across members; a faster
		// member's data can postdate it. Future data is fresh, not negative.
		{"future data", httpapi.QueryResult{SimNowNS: sec(5), NewestNS: sec(7)}, 0, true},
		{"no sim clock", httpapi.QueryResult{NewestNS: sec(80)}, 0, false},
		{"no points", httpapi.QueryResult{SimNowNS: sec(90)}, 0, false},
		{"empty", httpapi.QueryResult{}, 0, false},
	}
	for _, tc := range cases {
		age, ok := Freshness(tc.res)
		if age != tc.wantAge || ok != tc.wantOK {
			t.Errorf("%s: Freshness = (%v, %v), want (%v, %v)",
				tc.name, age, ok, tc.wantAge, tc.wantOK)
		}
	}
}
