package client

import (
	"time"

	"envmon/internal/telemetry/httpapi"
)

// Freshness reports how old a query result's data is: the gap between the
// server's simulated now at answer time and the newest point in the
// returned frames. ok is false when the document carries no freshness
// metadata (a pre-freshness server, a server with no simulation clock) or
// no points at all — callers must treat that case as "age unknown", which
// for a fail-safe consumer means stale, never fresh.
func Freshness(res httpapi.QueryResult) (age time.Duration, ok bool) {
	if res.SimNowNS == 0 || res.NewestNS == 0 {
		return 0, false
	}
	age = time.Duration(res.SimNowNS - res.NewestNS)
	if age < 0 {
		// Federated sim-now is the minimum across members; a faster member's
		// points can postdate it. Clamp: data from the future is fresh.
		age = 0
	}
	return age, true
}
