package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"envmon/internal/obs"
	"envmon/internal/telemetry"
	"envmon/internal/telemetry/httpapi"
)

// startInstrumentedDaemon is startDaemon with the observability layer
// wired, the way cmd/envmond does it.
func startInstrumentedDaemon(t *testing.T) (*Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	st := telemetry.New(telemetry.Options{Shards: 4})
	st.Instrument(reg, tr, obs.NewSlowLog(reg, 100*time.Millisecond, 64))
	k := telemetry.SeriesKey{Node: "n00", Backend: "MSR", Domain: "Total Power"}
	for s := 0; s < 50; s++ {
		if err := st.Ingest(k, "W", time.Duration(s)*time.Second, 118); err != nil {
			t.Fatal(err)
		}
	}
	api := httpapi.New(st, nil)
	api.Instrument(reg)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	// Daemon-level gauges envtop's summary reads.
	reg.GaugeFunc("envmon_uptime_seconds", "Daemon uptime.", func() float64 { return 10 })
	reg.Gauge("envmon_breaker_sources", "Chain sources by breaker state.", "state", "closed").Set(3)
	reg.Gauge("envmon_breaker_sources", "Chain sources by breaker state.", "state", "open").Set(1)
	reg.Gauge("envmon_breaker_sources", "Chain sources by breaker state.", "state", "half-open")
	st.Query(telemetry.Query{Domain: "Total Power"}) // populate the query histogram
	return New(srv.URL), reg
}

func TestMetricsFetchAndSummarize(t *testing.T) {
	cl, _ := startInstrumentedDaemon(t)
	snap, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("envmon_ingest_samples_total"); !ok || v != 50 {
		t.Errorf("ingest samples = %v, %v", v, ok)
	}
	if v, ok := snap.Value(`envmon_breaker_sources{state="open"}`); !ok || v != 1 {
		t.Errorf("open breakers = %v, %v", v, ok)
	}
	if sum, n := snap.Sum("envmon_breaker_sources"); sum != 4 || n != 3 {
		t.Errorf("breaker sum = %v over %d samples", sum, n)
	}
	if _, ok := snap.Quantile("envmon_pipeline_seconds", `stage="query"`, 0.99); !ok {
		t.Error("query p99 unavailable despite a recorded query")
	}

	s := SummarizeObs(snap)
	if s.Samples != 50 || s.Rate != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.BreakersOpen != 1 || s.BreakersClosed != 3 {
		t.Errorf("summary breakers = %+v", s)
	}
	if s.QueryP99 <= 0 {
		t.Errorf("summary p99 = %v", s.QueryP99)
	}
	line := s.String()
	for _, want := range []string{"ingest 50 samples", "(5/s)", "3 closed", "1 OPEN", "query p99"} {
		if !strings.Contains(line, want) {
			t.Errorf("header %q missing %q", line, want)
		}
	}
}

func TestMetricsAgainstUninstrumentedDaemon(t *testing.T) {
	cl := startDaemon(t) // no Instrument: /metrics is 404
	if _, err := cl.Metrics(context.Background()); err == nil {
		t.Fatal("want error from daemon without /metrics")
	}
}

func TestParseMetricsSkipsCommentsAndJunk(t *testing.T) {
	snap, err := ParseMetrics(strings.NewReader(`# HELP x_total help text
# TYPE x_total counter
x_total{a="b c",d="e"} 42
x_total 7

not-a-sample
y_seconds_bucket{le="+Inf"} 3
y_gauge 2.5e3
`))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value(`x_total{a="b c",d="e"}`); !ok || v != 42 {
		t.Errorf("labeled sample = %v, %v", v, ok)
	}
	if v, ok := snap.Value("x_total"); !ok || v != 7 {
		t.Errorf("bare sample = %v, %v", v, ok)
	}
	if v, ok := snap.Value("y_gauge"); !ok || v != 2500 {
		t.Errorf("scientific value = %v, %v", v, ok)
	}
	if sum, n := snap.Sum("x_total"); sum != 49 || n != 2 {
		t.Errorf("sum = %v over %d", sum, n)
	}
}

func TestQuantileFromRenderedHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", "l", []float64{0.01, 0.1, 1}, "stage", "query")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := snap.Quantile("lat_seconds", `stage="query"`, 0.5); !ok || q != 0.1 {
		t.Errorf("p50 = %v, %v (want 0.1)", q, ok)
	}
	// Server- and client-side estimates must agree.
	want, _ := h.Quantile(0.99)
	if q, ok := snap.Quantile("lat_seconds", `stage="query"`, 0.99); !ok || q != want {
		t.Errorf("p99 = %v, %v (server says %v)", q, ok, want)
	}
}
