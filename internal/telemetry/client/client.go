// Package client is a small HTTP client for the envmond daemon's query
// API — what a remote tool (envtop -remote) links against instead of the
// collection stack. Document types are shared with the server package
// (internal/telemetry/httpapi), so the two sides cannot drift.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"envmon/internal/telemetry/httpapi"
)

// Client talks to one envmond daemon (or one envfedd federation
// front-end — the wire types are the same).
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:9120"). A trailing slash is tolerated.
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

// WithTimeout sets the transport-level request timeout (default 10 s) and
// returns the client for chaining. A context deadline shorter than the
// timeout still wins — the federation tier passes per-member deadlines via
// context and uses this only to bound a member that never answers at all.
func (c *Client) WithTimeout(d time.Duration) *Client {
	if d > 0 {
		c.http.Timeout = d
	}
	return c
}

// StatusError is the typed error for a non-200 response, so callers can
// branch on the code (the federation tier treats a member's 404 on a
// filtered query as "no matching series there", not a member failure).
// Retrieve it with errors.As; the rendered message keeps the server's
// error body.
type StatusError struct {
	Code    int
	Message string // server's ErrorBody.Error, "" if the body was not JSON
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Message, e.Code)
	}
	return fmt.Sprintf("HTTP %d", e.Code)
}

func (c *Client) get(ctx context.Context, path string, params url.Values, doc any) error {
	u := c.base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode}
		var eb httpapi.ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			se.Message = eb.Error
		}
		return fmt.Errorf("client: %s: %w", path, se)
	}
	if err := json.Unmarshal(body, doc); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (httpapi.Health, error) {
	var h httpapi.Health
	err := c.get(ctx, "/healthz", nil, &h)
	return h, err
}

// Series fetches /series.
func (c *Client) Series(ctx context.Context) ([]httpapi.SeriesInfo, error) {
	var out httpapi.SeriesResult
	if err := c.get(ctx, "/series", nil, &out); err != nil {
		return nil, err
	}
	return out.Series, nil
}

// QueryParams selects series and a window for Query. Zero values are
// wildcards / unbounded, matching the server's defaults.
type QueryParams struct {
	Node       string
	Backend    string
	Domain     string
	From       time.Duration
	To         time.Duration
	Resolution string // "raw" (default), "1s", "10s", "60s"
	Aggregate  string // "none" (default), "mean", "min", "max", "last"
	// Deadline, when positive, is sent as deadline_ms: the server answers
	// 504 within the budget instead of holding the connection open.
	Deadline time.Duration
}

func windowValues(v url.Values, from, to time.Duration) {
	if from != 0 {
		v.Set("from", from.String())
	}
	if to != 0 {
		v.Set("to", to.String())
	}
}

func deadlineValue(v url.Values, d time.Duration) {
	if d > 0 {
		v.Set("deadline_ms", strconv.FormatInt(d.Milliseconds(), 10))
	}
}

// Query fetches /query and returns the frames alone — the common case for
// display tools. A thin wrapper over QueryFull.
func (c *Client) Query(ctx context.Context, p QueryParams) ([]httpapi.Frame, error) {
	out, err := c.QueryFull(ctx, p)
	if err != nil {
		return nil, err
	}
	return out.Frames, nil
}

// QueryFull fetches /query and returns the whole document, including the
// degraded/missing-members section a federated endpoint attaches to
// partial results. Callers that must distinguish "complete answer" from
// "some racks missing" use this.
func (c *Client) QueryFull(ctx context.Context, p QueryParams) (httpapi.QueryResult, error) {
	v := url.Values{}
	if p.Node != "" {
		v.Set("node", p.Node)
	}
	if p.Backend != "" {
		v.Set("backend", p.Backend)
	}
	if p.Domain != "" {
		v.Set("domain", p.Domain)
	}
	windowValues(v, p.From, p.To)
	deadlineValue(v, p.Deadline)
	if p.Resolution != "" {
		v.Set("res", p.Resolution)
	}
	if p.Aggregate != "" {
		v.Set("agg", p.Aggregate)
	}
	var out httpapi.QueryResult
	err := c.get(ctx, "/query", v, &out)
	return out, err
}

// TopKParams parameterizes TopK. K < 0 asks for every node (k=0 on the
// wire); K == 0 leaves the server default (10); an empty Domain means the
// server default ("Total Power").
type TopKParams struct {
	K          int
	Domain     string
	From       time.Duration
	To         time.Duration
	Resolution string
	// Deadline, when positive, is sent as deadline_ms (see QueryParams).
	Deadline time.Duration
}

// TopK fetches /topk.
func (c *Client) TopK(ctx context.Context, p TopKParams) (httpapi.TopKResult, error) {
	v := url.Values{}
	if p.K > 0 {
		v.Set("k", strconv.Itoa(p.K))
	} else if p.K < 0 {
		// The server's default for an absent k is 10; an explicit k=0 is
		// "rank everyone" — what the federation tier needs to merge exactly.
		v.Set("k", "0")
	}
	if p.Domain != "" {
		v.Set("domain", p.Domain)
	}
	windowValues(v, p.From, p.To)
	deadlineValue(v, p.Deadline)
	if p.Resolution != "" {
		v.Set("res", p.Resolution)
	}
	var out httpapi.TopKResult
	err := c.get(ctx, "/topk", v, &out)
	return out, err
}

// Members fetches a federation front-end's /members document: every
// downstream daemon with its breaker position. Plain envmond daemons do
// not serve this endpoint (404).
func (c *Client) Members(ctx context.Context) ([]httpapi.MemberInfo, error) {
	var out httpapi.MembersResult
	if err := c.get(ctx, "/members", nil, &out); err != nil {
		return nil, err
	}
	return out.Members, nil
}
