// Package client is a small HTTP client for the envmond daemon's query
// API — what a remote tool (envtop -remote) links against instead of the
// collection stack. Document types are shared with the server package
// (internal/telemetry/httpapi), so the two sides cannot drift.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"envmon/internal/telemetry/httpapi"
)

// Client talks to one envmond daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:9120"). A trailing slash is tolerated.
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(ctx context.Context, path string, params url.Values, doc any) error {
	u := c.base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb httpapi.ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("client: %s: %s (HTTP %d)", path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(body, doc); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (httpapi.Health, error) {
	var h httpapi.Health
	err := c.get(ctx, "/healthz", nil, &h)
	return h, err
}

// Series fetches /series.
func (c *Client) Series(ctx context.Context) ([]httpapi.SeriesInfo, error) {
	var out httpapi.SeriesResult
	if err := c.get(ctx, "/series", nil, &out); err != nil {
		return nil, err
	}
	return out.Series, nil
}

// QueryParams selects series and a window for Query. Zero values are
// wildcards / unbounded, matching the server's defaults.
type QueryParams struct {
	Node       string
	Backend    string
	Domain     string
	From       time.Duration
	To         time.Duration
	Resolution string // "raw" (default), "1s", "10s", "60s"
	Aggregate  string // "none" (default), "mean", "min", "max", "last"
}

func windowValues(v url.Values, from, to time.Duration) {
	if from != 0 {
		v.Set("from", from.String())
	}
	if to != 0 {
		v.Set("to", to.String())
	}
}

// Query fetches /query.
func (c *Client) Query(ctx context.Context, p QueryParams) ([]httpapi.Frame, error) {
	v := url.Values{}
	if p.Node != "" {
		v.Set("node", p.Node)
	}
	if p.Backend != "" {
		v.Set("backend", p.Backend)
	}
	if p.Domain != "" {
		v.Set("domain", p.Domain)
	}
	windowValues(v, p.From, p.To)
	if p.Resolution != "" {
		v.Set("res", p.Resolution)
	}
	if p.Aggregate != "" {
		v.Set("agg", p.Aggregate)
	}
	var out httpapi.QueryResult
	if err := c.get(ctx, "/query", v, &out); err != nil {
		return nil, err
	}
	return out.Frames, nil
}

// TopKParams parameterizes TopK. K <= 0 asks for every node; an empty
// Domain means the server default ("Total Power").
type TopKParams struct {
	K          int
	Domain     string
	From       time.Duration
	To         time.Duration
	Resolution string
}

// TopK fetches /topk.
func (c *Client) TopK(ctx context.Context, p TopKParams) (httpapi.TopKResult, error) {
	v := url.Values{}
	if p.K != 0 {
		v.Set("k", strconv.Itoa(p.K))
	}
	if p.Domain != "" {
		v.Set("domain", p.Domain)
	}
	windowValues(v, p.From, p.To)
	if p.Resolution != "" {
		v.Set("res", p.Resolution)
	}
	var out httpapi.TopKResult
	err := c.get(ctx, "/topk", v, &out)
	return out, err
}
