package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"envmon/internal/telemetry"
	"envmon/internal/telemetry/httpapi"
)

// startDaemon serves a populated store the way cmd/envmond does and returns
// a client pointed at it.
func startDaemon(t *testing.T) *Client {
	t.Helper()
	st := telemetry.New(telemetry.Options{Shards: 4})
	for i, node := range []string{"n00", "n01"} {
		k := telemetry.SeriesKey{Node: node, Backend: "MSR", Domain: "Total Power"}
		for s := 0; s < 5; s++ {
			if err := st.Ingest(k, "W", time.Duration(s)*time.Second, 100+10*float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := httptest.NewServer(httpapi.New(st, func() time.Duration { return 5 * time.Second }))
	t.Cleanup(srv.Close)
	return New(srv.URL + "/") // trailing slash must be tolerated
}

func TestClientRoundTrip(t *testing.T) {
	cl := startDaemon(t)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Series != 2 || h.Samples != 10 || h.SimNowNS != int64(5*time.Second) {
		t.Errorf("health = %+v", h)
	}

	series, err := cl.Series(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Node != "n00" || series[0].Unit != "W" {
		t.Errorf("series = %+v", series)
	}

	frames, err := cl.Query(ctx, QueryParams{
		Node: "n01", Resolution: "1s", Aggregate: "mean",
		From: time.Second, To: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || len(frames[0].Points) != 3 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Reduced == nil || *frames[0].Reduced != 110 {
		t.Errorf("reduced = %v, want 110", frames[0].Reduced)
	}

	top, err := cl.TopK(ctx, TopKParams{K: 1, Resolution: "1s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 1 || top.Nodes[0].Node != "n01" || top.TotalWatts != 210 {
		t.Errorf("topk = %+v", top)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	cl := startDaemon(t)
	_, err := cl.Query(context.Background(), QueryParams{Resolution: "5m"})
	if err == nil {
		t.Fatal("bad resolution accepted")
	}
	if !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("error %q does not carry the server status", err)
	}
}

func TestClientConnectionError(t *testing.T) {
	cl := New("http://127.0.0.1:1") // nothing listens on port 1
	if _, err := cl.Health(context.Background()); err == nil {
		t.Fatal("unreachable daemon produced no error")
	}
}
