package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics support: fetching and parsing the daemon's Prometheus-text
// /metrics exposition, plus the condensed ObsStatus summary envtop's
// header line is built from. The parser handles exactly what
// internal/obs emits — `name{labels} value` with sorted, escaped labels —
// and skips comment lines; it is not a general openmetrics parser.

// MetricsSnapshot is one scrape, parsed: sample name+labels → value.
type MetricsSnapshot struct {
	samples map[string]float64
}

// Value returns the sample with the exact rendered label set (e.g.
// `envmon_http_requests_total{endpoint="query"}` — labels in sorted key
// order, or the bare name for an unlabeled metric).
func (m *MetricsSnapshot) Value(sample string) (float64, bool) {
	v, ok := m.samples[sample]
	return v, ok
}

// Sum returns the sum of every sample of the named family (any labels),
// and how many samples matched.
func (m *MetricsSnapshot) Sum(family string) (float64, int) {
	var sum float64
	n := 0
	for k, v := range m.samples {
		if name := k; name == family ||
			(strings.HasPrefix(name, family) && len(name) > len(family) && name[len(family)] == '{') {
			sum += v
			n++
		}
	}
	return sum, n
}

// Quantile estimates the q-quantile of a histogram family from its
// cumulative _bucket samples matched by the given rendered label pair
// (e.g. `stage="query"`). Mirrors the server-side estimate: the upper
// bound of the first bucket whose cumulative count reaches q × total,
// with the +Inf bucket collapsing to the largest finite bound. Returns
// false when the histogram is absent or empty.
func (m *MetricsSnapshot) Quantile(family, labelPair string, q float64) (float64, bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	prefix := family + "_bucket{"
	for k, v := range m.samples {
		if !strings.HasPrefix(k, prefix) || !strings.Contains(k, labelPair) {
			continue
		}
		le, ok := parseLE(k)
		if !ok {
			continue
		}
		buckets = append(buckets, bkt{le, v})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	if rank < 1 {
		rank = 1
	}
	for i, b := range buckets {
		if b.cum >= rank {
			if b.le == maxFloat { // +Inf bucket: report largest finite bound
				if i > 0 {
					return buckets[i-1].le, true
				}
				return 0, false
			}
			return b.le, true
		}
	}
	return 0, false
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// parseLE extracts the le label from a rendered _bucket sample key.
func parseLE(key string) (float64, bool) {
	i := strings.Index(key, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := key[i+4:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	if rest[:j] == "+Inf" {
		return maxFloat, true
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Metrics fetches and parses /metrics. Daemons predating the
// observability layer return 404; callers that merely decorate output
// (envtop) should treat errors as "no metrics" rather than fatal.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("client: /metrics: HTTP %d", resp.StatusCode)
	}
	return ParseMetrics(io.LimitReader(resp.Body, 16<<20))
}

// ParseMetrics parses a Prometheus text exposition into a snapshot.
func ParseMetrics(r io.Reader) (*MetricsSnapshot, error) {
	snap := &MetricsSnapshot{samples: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// `name{labels} value` — the value follows the last space; labels
		// cannot contain an unescaped space outside quotes, but rather than
		// tokenize we split at the final space, which the exposition
		// guarantees separates sample from value.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue // timestamped or exotic lines: skip, don't fail
		}
		snap.samples[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: scanning /metrics: %w", err)
	}
	return snap, nil
}

// ObsStatus is the condensed self-observability summary a dashboard
// header shows: how fast the daemon ingests, how slow its queries are,
// and whether any breakers are open.
type ObsStatus struct {
	// Samples is the total ingested; Rate is samples per second of daemon
	// uptime (0 when uptime is unknown).
	Samples float64
	Rate    float64
	// QueryP99 is the estimated 99th-percentile query latency; zero when
	// no queries have run.
	QueryP99 time.Duration
	// BreakersOpen / BreakersHalfOpen / BreakersClosed count sources by
	// breaker state across every chain.
	BreakersOpen     int
	BreakersHalfOpen int
	BreakersClosed   int
	// SlowOps is the total count of operations past the slow threshold.
	SlowOps float64
}

// String renders the one-line header, e.g.
//
//	ingest 12.3k samples (4.1k/s) | query p99 5ms | breakers 8 closed, 1 open | slow ops 3
func (s ObsStatus) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ingest %s samples", humanCount(s.Samples))
	if s.Rate > 0 {
		fmt.Fprintf(&b, " (%s/s)", humanCount(s.Rate))
	}
	if s.QueryP99 > 0 {
		fmt.Fprintf(&b, " | query p99 %s", s.QueryP99)
	}
	if s.BreakersClosed+s.BreakersHalfOpen+s.BreakersOpen > 0 {
		fmt.Fprintf(&b, " | breakers %d closed", s.BreakersClosed)
		if s.BreakersHalfOpen > 0 {
			fmt.Fprintf(&b, ", %d half-open", s.BreakersHalfOpen)
		}
		if s.BreakersOpen > 0 {
			fmt.Fprintf(&b, ", %d OPEN", s.BreakersOpen)
		}
	}
	if s.SlowOps > 0 {
		fmt.Fprintf(&b, " | slow ops %.0f", s.SlowOps)
	}
	return b.String()
}

func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 1, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
}

// SummarizeObs condenses a snapshot into the header fields. Works with
// whatever families are present; absent families leave zero fields.
func SummarizeObs(m *MetricsSnapshot) ObsStatus {
	var s ObsStatus
	s.Samples, _ = m.Value("envmon_ingest_samples_total")
	if up, ok := m.Value("envmon_uptime_seconds"); ok && up > 0 {
		s.Rate = s.Samples / up
	}
	if p99, ok := m.Quantile("envmon_pipeline_seconds", `stage="query"`, 0.99); ok {
		s.QueryP99 = time.Duration(p99 * float64(time.Second))
	}
	if v, ok := m.Value(`envmon_breaker_sources{state="open"}`); ok {
		s.BreakersOpen = int(v)
	}
	if v, ok := m.Value(`envmon_breaker_sources{state="half-open"}`); ok {
		s.BreakersHalfOpen = int(v)
	}
	if v, ok := m.Value(`envmon_breaker_sources{state="closed"}`); ok {
		s.BreakersClosed = int(v)
	}
	s.SlowOps, _ = m.Sum("envmon_slow_ops_total")
	return s
}
