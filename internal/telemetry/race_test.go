package telemetry

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"envmon/internal/simclock"
)

// ingestDomains drives concurrent ingest from `domains` clock domains into
// a store: each domain owns `seriesPerDomain` series polled by its own
// timers, the group advances in lock-step epochs on one worker per domain,
// and values are a pure function of (series, time) so every run produces
// the same store contents.
func ingestDomains(t *testing.T, st *Store, domains, seriesPerDomain int, span time.Duration) {
	t.Helper()
	g := simclock.NewGroup(domains)
	for d := 0; d < domains; d++ {
		clock := g.Clock(d)
		for s := 0; s < seriesPerDomain; s++ {
			k := SeriesKey{
				Node:    "dom" + string(rune('0'+d)) + "-n" + string(rune('0'+s)),
				Backend: "MSR",
				Domain:  "Total Power",
			}
			level := 100 + 10*float64(d) + float64(s)
			clock.Every(10*time.Millisecond, func(now time.Duration) {
				v := level + float64(now/(10*time.Millisecond)%7)
				if err := st.Ingest(k, "W", now, v); err != nil {
					t.Errorf("domain ingest: %v", err)
				}
			})
		}
	}
	g.AdvanceEpochs(span, 100*time.Millisecond, domains, nil)
}

// TestConcurrentDomainIngestAndQuery is the acceptance race gate: ≥ 4
// clock domains ingesting concurrently while queries run against the live
// store, under -race, with rollups identical at every shard count.
func TestConcurrentDomainIngestAndQuery(t *testing.T) {
	const domains, seriesPerDomain = 4, 4
	const span = 2 * time.Second

	var reference []Frame
	for _, shards := range []int{1, 3, 8} {
		st := New(Options{Shards: shards})

		// Concurrent readers hammer the store while the domains advance.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					st.Query(Query{Domain: "Total Power", Resolution: Res1s, Aggregate: AggMean})
					st.TopK(3, "", 0, 0, Raw)
					st.Series()
				}
			}()
		}
		ingestDomains(t, st, domains, seriesPerDomain, span)
		close(stop)
		wg.Wait()

		if got := st.NumSeries(); got != domains*seriesPerDomain {
			t.Fatalf("shards=%d: series = %d, want %d", shards, got, domains*seriesPerDomain)
		}
		frames := st.Query(Query{Resolution: Res1s, Aggregate: AggMean})
		if reference == nil {
			reference = frames
			// Sanity: timers fire at 10 ms..2 s, so every series holds
			// 200 polls in 1 s buckets of 99, 100, and 1 samples.
			for _, f := range frames {
				total := 0
				for _, p := range f.Points {
					total += p.Count
				}
				if len(f.Points) != 3 || total != 200 {
					t.Fatalf("series %+v: %d buckets, %d samples (want 3, 200)", f.Key, len(f.Points), total)
				}
			}
			continue
		}
		if !reflect.DeepEqual(reference, frames) {
			t.Fatalf("shards=%d: rollups diverged from shards=1 under concurrent ingest", shards)
		}
	}
}
