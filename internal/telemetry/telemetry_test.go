package telemetry

import (
	"errors"
	"testing"
	"time"
)

func key(node string) SeriesKey {
	return SeriesKey{Node: node, Backend: "MSR", Domain: "Total Power"}
}

func mustIngest(t *testing.T, st *Store, k SeriesKey, at time.Duration, v float64) {
	t.Helper()
	if err := st.Ingest(k, "W", at, v); err != nil {
		t.Fatalf("Ingest(%v, %v, %v): %v", k, at, v, err)
	}
}

func TestIngestAndCounters(t *testing.T) {
	st := New(Options{Shards: 4})
	mustIngest(t, st, key("n0"), 0, 100)
	mustIngest(t, st, key("n0"), time.Second, 110)
	mustIngest(t, st, key("n1"), 500*time.Millisecond, 90)
	if st.NumSeries() != 2 {
		t.Errorf("NumSeries = %d, want 2", st.NumSeries())
	}
	if st.Samples() != 3 {
		t.Errorf("Samples = %d, want 3", st.Samples())
	}
	infos := st.Series()
	if len(infos) != 2 || infos[0].Key.Node != "n0" || infos[1].Key.Node != "n1" {
		t.Fatalf("Series = %+v", infos)
	}
	if infos[0].Samples != 2 || infos[0].Newest != time.Second || infos[0].Oldest != 0 {
		t.Errorf("n0 info = %+v", infos[0])
	}
	if infos[0].Unit != "W" {
		t.Errorf("unit = %q", infos[0].Unit)
	}
}

func TestIngestOrderEnforcedPerSeries(t *testing.T) {
	st := New(Options{})
	mustIngest(t, st, key("n0"), time.Second, 1)
	if err := st.Ingest(key("n0"), "W", 999*time.Millisecond, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order ingest: err = %v, want ErrOutOfOrder", err)
	}
	// Equal timestamps are fine; other series are independent.
	mustIngest(t, st, key("n0"), time.Second, 3)
	mustIngest(t, st, key("n1"), 0, 4)
	if err := st.Ingest(key("n2"), "W", -time.Second, 5); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("negative-time ingest: err = %v, want ErrOutOfOrder", err)
	}
}

func TestCloseStopsIngestKeepsQueries(t *testing.T) {
	st := New(Options{})
	mustIngest(t, st, key("n0"), 0, 42)
	st.Close()
	if err := st.Ingest(key("n0"), "W", time.Second, 43); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after Close: err = %v, want ErrClosed", err)
	}
	frames := st.Query(Query{})
	if len(frames) != 1 || len(frames[0].Points) != 1 || frames[0].Points[0].Last != 42 {
		t.Fatalf("closed store not readable: %+v", frames)
	}
}

func TestMaxSeriesLimit(t *testing.T) {
	st := New(Options{MaxSeries: 2})
	mustIngest(t, st, key("n0"), 0, 1)
	mustIngest(t, st, key("n1"), 0, 1)
	if err := st.Ingest(key("n2"), "W", 0, 1); !errors.Is(err, ErrSeriesLimit) {
		t.Errorf("third series: err = %v, want ErrSeriesLimit", err)
	}
	// Existing series keep accepting samples at the limit.
	mustIngest(t, st, key("n0"), time.Second, 2)
}

func TestRawRingEvictsOldest(t *testing.T) {
	st := New(Options{RawCapacity: 4})
	for i := 0; i < 10; i++ {
		mustIngest(t, st, key("n0"), time.Duration(i)*time.Second, float64(i))
	}
	frames := st.Query(Query{Resolution: Raw})
	pts := frames[0].Points
	if len(pts) != 4 || pts[0].T != 6*time.Second || pts[3].T != 9*time.Second {
		t.Fatalf("ring contents = %+v, want samples 6..9", pts)
	}
	// Rollups retain the evicted history.
	roll := st.Query(Query{Resolution: Res1s})
	if len(roll[0].Points) != 10 {
		t.Errorf("1s rollup buckets = %d, want 10 (rollups must outlive raw eviction)", len(roll[0].Points))
	}
	if info := st.Series()[0]; info.Samples != 10 || info.Oldest != 6*time.Second {
		t.Errorf("info = %+v", info)
	}
}

func TestRollupLadderIncrementalStats(t *testing.T) {
	st := New(Options{})
	k := key("n0")
	// 25 samples at 400 ms spacing: t = 0, 0.4, ..., 9.6 s, values 0..24.
	for i := 0; i < 25; i++ {
		mustIngest(t, st, k, time.Duration(i)*400*time.Millisecond, float64(i))
	}
	// 1 s buckets: t in [0,1) holds samples 0,1,2 (0, .4, .8).
	frames := st.Query(Query{Resolution: Res1s})
	b0 := frames[0].Points[0]
	if b0.Count != 3 || b0.Min != 0 || b0.Max != 2 || b0.Mean != 1 || b0.Last != 2 {
		t.Errorf("1s bucket 0 = %+v", b0)
	}
	// [1,2) holds samples 3,4 (1.2, 1.6).
	b1 := frames[0].Points[1]
	if b1.Count != 2 || b1.Min != 3 || b1.Max != 4 || b1.Mean != 3.5 || b1.Last != 4 {
		t.Errorf("1s bucket 1 = %+v", b1)
	}
	// 10 s buckets: all 25 samples fall in [0,10).
	frames = st.Query(Query{Resolution: Res10s})
	if n := len(frames[0].Points); n != 1 {
		t.Fatalf("10s buckets = %d, want 1", n)
	}
	b := frames[0].Points[0]
	if b.Count != 25 || b.Min != 0 || b.Max != 24 || b.Mean != 12 || b.Last != 24 {
		t.Errorf("10s bucket = %+v", b)
	}
	// 60 s level mirrors it.
	frames = st.Query(Query{Resolution: Res60s})
	if b := frames[0].Points[0]; b.Count != 25 || b.Mean != 12 {
		t.Errorf("60s bucket = %+v", b)
	}
}

func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	st := New(Options{Shards: 8})
	k := key("n0")
	mustIngest(t, st, k, 0, 1) // first touch allocates the series
	at := time.Second
	allocs := testing.AllocsPerRun(1000, func() {
		if err := st.Ingest(k, "W", at, 5); err != nil {
			t.Fatal(err)
		}
		at += time.Second
	})
	if allocs != 0 {
		t.Errorf("steady-state Ingest allocates %.1f per op, want 0", allocs)
	}
}

func TestSplitSeriesName(t *testing.T) {
	cases := []struct{ name, backend, domain string }{
		{"MSR/Total Power", "MSR", "Total Power"},
		{"MICRAS daemon/Die Temperature", "MICRAS daemon", "Die Temperature"},
		{"MSR/DDR/GDDR Temperature", "MSR", "DDR/GDDR Temperature"},
		{"bare", "", "bare"},
	}
	for _, c := range cases {
		b, d := SplitSeriesName(c.name)
		if b != c.backend || d != c.domain {
			t.Errorf("SplitSeriesName(%q) = (%q, %q), want (%q, %q)", c.name, b, d, c.backend, c.domain)
		}
	}
}
