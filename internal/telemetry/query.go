package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// Aggregate selects the window reduction a query computes per frame in
// addition to the point list.
type Aggregate uint8

const (
	// AggNone skips the reduction; the frame carries points only.
	AggNone Aggregate = iota
	// AggMean reduces to the sample-weighted mean over the window.
	AggMean
	// AggMin reduces to the minimum over the window.
	AggMin
	// AggMax reduces to the maximum over the window.
	AggMax
	// AggLast reduces to the newest value in the window.
	AggLast
)

func (a Aggregate) String() string {
	switch a {
	case AggNone:
		return "none"
	case AggMean:
		return "mean"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggLast:
		return "last"
	default:
		return fmt.Sprintf("Aggregate(%d)", uint8(a))
	}
}

// ParseAggregate is the inverse of String, for query parameters. The empty
// string selects AggNone.
func ParseAggregate(s string) (Aggregate, error) {
	switch s {
	case "", "none":
		return AggNone, nil
	case "mean":
		return AggMean, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "last":
		return AggLast, nil
	default:
		return AggNone, fmt.Errorf("telemetry: unknown aggregate %q (none|mean|min|max|last)", s)
	}
}

// Query selects series and a time window.
//
// Node, Backend, and Domain match exactly; an empty field matches every
// series. The window is half-open [From, To); To <= 0 means unbounded.
// At Raw resolution the frame carries one point per sample still in the
// ring; at a rollup resolution it carries one point per bucket that
// overlaps the window.
type Query struct {
	Node       string
	Backend    string
	Domain     string
	From       time.Duration
	To         time.Duration
	Resolution Resolution
	Aggregate  Aggregate
}

func (q Query) matches(k SeriesKey) bool {
	return (q.Node == "" || q.Node == k.Node) &&
		(q.Backend == "" || q.Backend == k.Backend) &&
		(q.Domain == "" || q.Domain == k.Domain)
}

// FramePoint is one resolved point: a raw sample (Count 1, all four
// statistics equal to the value) or one rollup bucket.
type FramePoint struct {
	T     time.Duration // sample time, or bucket start
	Min   float64
	Max   float64
	Mean  float64
	Last  float64
	Count int
}

// Frame is the query result for one matching series.
type Frame struct {
	Key        SeriesKey
	Unit       string
	Resolution Resolution
	Points     []FramePoint
	// Gaps are the failed-poll instants inside the window still held in the
	// gap ring: explicit "the mechanism did not answer here" markers, so a
	// consumer never mistakes missing data for zero power. Served at every
	// resolution.
	Gaps []time.Duration
	// Reduced is the window reduction selected by Query.Aggregate;
	// ReducedOK reports whether it is valid (a non-AggNone aggregate over
	// a non-empty window).
	Reduced   float64
	ReducedOK bool
}

// Query runs q and returns one frame per matching series, sorted by key.
// Frames are deep copies: the caller may hold them while ingest continues.
// Results are a pure function of each series' ingest stream —
// byte-identical at any shard count. A persistent store serves the full
// history: each frame stitches sealed block data and the in-memory tail
// together along the series' persisted watermark (block data first, then
// ring entries past the watermark), so a restart changes nothing a reader
// can observe.
func (st *Store) Query(q Query) []Frame {
	if st.obs == nil {
		return st.runQuery(q)
	}
	start := time.Now()
	out := st.runQuery(q)
	st.observeQuery(q, len(out), time.Since(start))
	return out
}

func (st *Store) runQuery(q Query) []Frame {
	var out []Frame
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if !q.matches(s.key) {
				continue
			}
			out = append(out, st.buildFrame(s, q))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}

// buildFrame resolves one series against the query window. Called with the
// owning shard's read lock held; block reads nest the block store's read
// lock inside it (the engine's fixed lock order). Block read failures are
// counted in StorageStats and degrade the frame to what memory holds —
// queries never fail outright.
func (st *Store) buildFrame(s *series, q Query) Frame {
	f := Frame{Key: s.key, Unit: s.unit, Resolution: q.Resolution}
	// red accumulates the window reduction across points.
	var red Bucket
	add := func(p FramePoint, sum float64) {
		f.Points = append(f.Points, p)
		if red.Count == 0 {
			red = Bucket{Count: p.Count, Min: p.Min, Max: p.Max, Sum: sum, Last: p.Last}
			return
		}
		if p.Min < red.Min {
			red.Min = p.Min
		}
		if p.Max > red.Max {
			red.Max = p.Max
		}
		red.Sum += sum
		red.Last = p.Last
		red.Count += p.Count
	}
	if q.Resolution == Raw {
		if st.blocks != nil && s.persisted > 0 {
			err := st.blocks.EachPoint(s.key, q.From, q.To, func(p Point) {
				add(FramePoint{T: p.T, Min: p.V, Max: p.V, Mean: p.V, Last: p.V, Count: 1}, p.V)
			})
			if err != nil {
				st.readErrs.Add(1)
			}
		}
		// Ring entries below the watermark were already served from blocks.
		n := s.raw.len()
		skip := 0
		if over := int64(s.persisted) - (int64(s.count) - int64(n)); over > 0 {
			skip = int(over)
		}
		for i := skip; i < n; i++ {
			p := s.raw.at(i)
			if p.T < q.From || (q.To > 0 && p.T >= q.To) {
				continue
			}
			add(FramePoint{T: p.T, Min: p.V, Max: p.V, Mean: p.V, Last: p.V, Count: 1}, p.V)
		}
	} else {
		period := q.Resolution.Period()
		lvl := int(q.Resolution - 1)
		if st.blocks != nil && s.bucketsPersisted[lvl] > 0 {
			err := st.blocks.EachClosedBucket(s.key, lvl, period, q.From, q.To, func(b Bucket) {
				add(FramePoint{T: b.Start, Min: b.Min, Max: b.Max, Mean: b.Mean(), Last: b.Last, Count: b.Count}, b.Sum)
			})
			if err != nil {
				st.readErrs.Add(1)
			}
		}
		rb := &s.roll[lvl]
		n := rb.len()
		skip := 0
		if over := int64(s.bucketsPersisted[lvl]) - (int64(s.bucketsTotal[lvl]) - int64(n)); over > 0 {
			skip = int(over)
		}
		for i := skip; i < n; i++ {
			b := rb.at(i)
			// include buckets overlapping the window
			if b.Start+period <= q.From || (q.To > 0 && b.Start >= q.To) {
				continue
			}
			add(FramePoint{T: b.Start, Min: b.Min, Max: b.Max, Mean: b.Mean(), Last: b.Last, Count: b.Count}, b.Sum)
		}
	}
	if st.blocks != nil && s.gapsPersisted > 0 {
		err := st.blocks.EachGap(s.key, q.From, q.To, func(t time.Duration) {
			f.Gaps = append(f.Gaps, t)
		})
		if err != nil {
			st.readErrs.Add(1)
		}
	}
	gn := s.gaps.len()
	gskip := 0
	if over := int64(s.gapsPersisted) - (int64(s.gapCount) - int64(gn)); over > 0 {
		gskip = int(over)
	}
	for i := gskip; i < gn; i++ {
		t := s.gaps.at(i)
		if t < q.From || (q.To > 0 && t >= q.To) {
			continue
		}
		f.Gaps = append(f.Gaps, t)
	}
	if q.Aggregate != AggNone && red.Count > 0 {
		f.ReducedOK = true
		switch q.Aggregate {
		case AggMean:
			f.Reduced = red.Mean()
		case AggMin:
			f.Reduced = red.Min
		case AggMax:
			f.Reduced = red.Max
		case AggLast:
			f.Reduced = red.Last
		}
	}
	return f
}

// NodePower is one entry of a TopK ranking: a node and its mean power over
// the queried window, summed across that node's matching series.
type NodePower struct {
	Node   string
	Watts  float64
	Series int // matching series that contributed
}

// TopK ranks nodes by mean power over [from, to) at the given resolution
// and returns the top k (k <= 0 returns every node) plus the cluster-wide
// total — the "which jobs are burning the machine" and "what is the room
// drawing" questions an operator service answers. domain selects which
// measurement domain counts as power; the empty string defaults to
// "Total Power". A node's watts are the sum over its matching backends.
// Ordering is deterministic: watts descending, node name ascending on ties.
func (st *Store) TopK(k int, domain string, from, to time.Duration, res Resolution) (ranked []NodePower, total float64) {
	if domain == "" {
		domain = "Total Power"
	}
	frames := st.Query(Query{Domain: domain, From: from, To: to, Resolution: res, Aggregate: AggMean})
	// Frames arrive sorted by key, so same-node frames are adjacent and
	// the fold is deterministic.
	for _, f := range frames {
		if !f.ReducedOK {
			continue
		}
		if n := len(ranked); n > 0 && ranked[n-1].Node == f.Key.Node {
			ranked[n-1].Watts += f.Reduced
			ranked[n-1].Series++
		} else {
			ranked = append(ranked, NodePower{Node: f.Key.Node, Watts: f.Reduced, Series: 1})
		}
	}
	for _, np := range ranked {
		total += np.Watts
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Watts != ranked[j].Watts {
			return ranked[i].Watts > ranked[j].Watts
		}
		return ranked[i].Node < ranked[j].Node
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, total
}

// TotalPower reports the cluster-wide mean power over the window: the sum
// of every node's mean across matching series (see TopK for domain
// semantics), plus the number of nodes contributing.
func (st *Store) TotalPower(domain string, from, to time.Duration, res Resolution) (watts float64, nodes int) {
	ranked, total := st.TopK(0, domain, from, to, res)
	return total, len(ranked)
}
