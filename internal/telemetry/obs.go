package telemetry

import (
	"fmt"
	"time"

	"envmon/internal/obs"
)

// Self-observability for the storage engine. The design constraint is the
// paper's own: the monitoring system must not perturb what it monitors —
// here, the store must not slow the ingest path it exists to measure.
// Memory ingest runs ~200 ns/sample, so even one extra atomic add is a
// measurable percentage. The instrumentation therefore adds (almost)
// nothing inline:
//
//   - Counts the store already maintains (samples, gaps, series,
//     compactions, read errors, WAL sizes, watermarks) are exported as
//     func metrics — closures evaluated at scrape time over the existing
//     atomics and per-shard state. The ingest path gains zero
//     instructions.
//   - Derived quantities (ring evictions, persisted seam positions,
//     compression ratio) are computed at scrape time by walking the
//     shards under read locks, never counted inline.
//   - WAL-append spans are sampled: 1 in 1024 journaled appends is
//     timed, enough to populate the latency histogram without paying
//     two clock reads per sample.
//   - Queries and compactions are timed unconditionally — they are
//     orders of magnitude rarer than ingests — and feed the slow-op log.
//
// Instrument must be called at wiring time, before the store is shared
// across goroutines: the obs hook is a plain field the hot path reads
// without synchronization.

// storeObs holds the store's tracing hooks; nil means uninstrumented.
type storeObs struct {
	walStage     *obs.Stage
	ingestStage  *obs.Stage
	queryStage   *obs.Stage
	compactStage *obs.Stage
	slow         *obs.SlowLog
}

// Instrument registers the store's metrics in reg and wires pipeline
// stages from tr and the slow-op log. Any argument may be nil; the
// corresponding accounting is skipped. Call once, before the store is
// shared — typically right after New or Open.
func (st *Store) Instrument(reg *obs.Registry, tr *obs.Tracer, slow *obs.SlowLog) {
	st.obs = &storeObs{
		walStage:     tr.Stage("wal_append"),
		ingestStage:  tr.Stage("ingest"),
		queryStage:   tr.Stage("query"),
		compactStage: tr.Stage("compaction"),
		slow:         slow,
	}
	if reg == nil {
		return
	}

	reg.CounterFunc("envmon_ingest_samples_total",
		"Samples ever ingested (including ones since evicted from head rings).",
		func() float64 { return float64(st.samples.Load()) })
	reg.CounterFunc("envmon_ingest_gaps_total",
		"Failed-poll gap markers ever ingested.",
		func() float64 { return float64(st.gaps.Load()) })
	reg.CounterFunc("envmon_ingest_errors_total",
		"Rejected ingests (closed store, out-of-order sample, series limit, journal failure).",
		func() float64 { return float64(st.ingestErrs.Load()) })
	reg.GaugeFunc("envmon_series",
		"Distinct series currently stored.",
		func() float64 { return float64(st.nseries.Load()) })
	reg.CounterFunc("envmon_ring_evicted_samples_total",
		"Raw samples pushed out of head rings (computed at scrape from per-series counts).",
		func() float64 {
			var evicted uint64
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				for _, s := range sh.series {
					evicted += s.count - uint64(s.raw.len())
				}
				sh.mu.RUnlock()
			}
			return float64(evicted)
		})
	reg.CounterFunc("envmon_persisted_samples_total",
		"Samples sealed into blocks — the count-seam watermark summed across series.",
		func() float64 { return float64(st.persistedSamples()) })
	reg.CounterFunc("envmon_persisted_gaps_total",
		"Gap markers sealed into blocks.",
		func() float64 {
			var n uint64
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				for _, s := range sh.series {
					n += s.gapsPersisted
				}
				sh.mu.RUnlock()
			}
			return float64(n)
		})

	if st.wal == nil {
		return
	}
	// Persistence tiers: all scrape-time reads of state the engine already
	// tracks. The WAL counters are read under the same shard locks the
	// appenders hold, so the values are exact.
	reg.GaugeFunc("envmon_wal_live_bytes",
		"Live journal bytes across shard segments.",
		func() float64 {
			var n int64
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				if sh.wal != nil {
					n += sh.wal.Size()
				}
				sh.mu.RUnlock()
			}
			return float64(n)
		})
	reg.CounterFunc("envmon_wal_appended_bytes_total",
		"Bytes ever journaled, across segment rotations — the WAL write volume.",
		func() float64 {
			var n int64
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				if sh.wal != nil {
					n += sh.wal.Appended()
				}
				sh.mu.RUnlock()
			}
			return float64(n)
		})
	reg.CounterFunc("envmon_wal_rotations_total",
		"WAL segment rotations (one per compaction per shard).",
		func() float64 {
			var n uint64
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				if sh.wal != nil {
					n += sh.wal.Rotations()
				}
				sh.mu.RUnlock()
			}
			return float64(n)
		})
	reg.CounterFunc("envmon_compactions_total",
		"Blocks written since open.",
		func() float64 { return float64(st.compactions.Load()) })
	reg.CounterFunc("envmon_block_read_errors_total",
		"Block read failures during queries (frames degrade to head data).",
		func() float64 { return float64(st.readErrs.Load()) })
	reg.GaugeFunc("envmon_block_files",
		"Sealed block files on disk.",
		func() float64 { return float64(st.blocks.NumBlocks()) })
	reg.GaugeFunc("envmon_block_bytes",
		"Total block file bytes.",
		func() float64 { return float64(st.blocks.Bytes()) })
	reg.GaugeFunc("envmon_block_compression_ratio",
		"Persisted samples at a 16-byte baseline over block bytes (0 until the first block).",
		func() float64 {
			bytes := st.blocks.Bytes()
			if bytes <= 0 {
				return 0
			}
			return float64(16*st.persistedSamples()) / float64(bytes)
		})
}

// persistedSamples sums the per-series persisted watermarks.
func (st *Store) persistedSamples() uint64 {
	var n uint64
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			n += s.persisted
		}
		sh.mu.RUnlock()
	}
	return n
}

// observeQuery records one completed query in the query stage and, past
// the threshold, the slow-op log. The detail string is only built for
// slow queries.
func (st *Store) observeQuery(q Query, frames int, wall time.Duration) {
	o := st.obs
	if o == nil {
		return
	}
	o.queryStage.Observe(wall, 0)
	o.slow.Observe("query", wall, 0, func() string {
		return fmt.Sprintf("node=%q backend=%q domain=%q res=%s agg=%s frames=%d",
			q.Node, q.Backend, q.Domain, q.Resolution, q.Aggregate, frames)
	})
}

// SlowOps returns the retained slow operations, newest first (nil when
// uninstrumented) — the store's slow-query log, surfaced by the daemon's
// debug endpoint.
func (st *Store) SlowOps() []obs.SlowOp {
	if st.obs == nil {
		return nil
	}
	return st.obs.slow.Snapshot()
}
