package telemetry

import (
	"errors"
	"testing"
	"time"

	"envmon/internal/envdb"
	"envmon/internal/simclock"
)

// flakyIngester interposes a controllable outage in front of a real store.
type flakyIngester struct {
	st      *Store
	failing bool
	fails   int
}

func (f *flakyIngester) Ingest(key SeriesKey, unit string, t time.Duration, v float64) error {
	if f.failing {
		f.fails++
		return errors.New("store outage")
	}
	return f.st.Ingest(key, unit, t, v)
}

// TestEnvDBBridgeLosesNothingThroughTransientOutage is the regression test
// for the pending queue: a store outage spanning several drains must delay
// records, never drop them. Before the queue existed, the cursor advanced
// past failed records and a transient error silently lost data.
func TestEnvDBBridgeLosesNothingThroughTransientOutage(t *testing.T) {
	clock := simclock.New()
	db := envdb.New()
	st := New(Options{})
	flaky := &flakyIngester{st: st}
	bridge, err := StartEnvDBBridge(clock, db, flaky, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	minute := 0
	clock.Every(60*time.Second, func(now time.Duration) {
		minute++
		db.Insert(envdb.Record{Time: now, Location: "R00-B0", Sensor: "input_power", Value: float64(minute), Unit: "W"})
	})

	clock.Advance(3 * time.Minute) // healthy: batches 1-2 in, 3 pending next round
	flaky.failing = true
	clock.Advance(3 * time.Minute) // outage: drains at 4m, 5m, 6m all fail
	if bridge.Err() == nil {
		t.Fatal("outage never surfaced through Err")
	}
	if bridge.Pending() == 0 {
		t.Fatal("no records parked during the outage; the queue is not engaged")
	}
	if got := st.Samples(); got != 2 {
		t.Fatalf("samples during outage = %d, want the 2 pre-outage ones", got)
	}
	flaky.failing = false
	clock.Advance(8 * time.Minute) // heal and run out the clock

	if bridge.Pending() != 0 {
		t.Errorf("Pending = %d after recovery, want 0", bridge.Pending())
	}
	if bridge.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0 — a transient outage must lose zero points", bridge.Dropped())
	}
	// 14 minutes of batches minus the straggler stamped at the final instant.
	if bridge.Moved() != 13 {
		t.Errorf("Moved = %d, want 13", bridge.Moved())
	}
	frames := st.Query(Query{Node: "R00-B0", Backend: EnvDBBackend, Domain: "input_power"})
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	pts := frames[0].Points
	if len(pts) != 13 {
		t.Fatalf("points = %d, want 13 (every batch before the straggler)", len(pts))
	}
	for i, p := range pts {
		if p.Mean != float64(i+1) {
			t.Fatalf("point %d = %v, want %d — replay must preserve database order", i, p.Mean, i+1)
		}
	}
}

// TestEnvDBBridgeDropsOnlyOutOfOrder: records the store permanently rejects
// are counted and skipped, not replayed forever.
func TestEnvDBBridgeDropsOnlyOutOfOrder(t *testing.T) {
	clock := simclock.New()
	db := envdb.New()
	st := New(Options{})
	key := SeriesKey{Node: "R00-B0", Backend: EnvDBBackend, Domain: "input_power"}
	// A sample far in the future makes everything the bridge drains
	// out-of-order for this series.
	if err := st.Ingest(key, "W", time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	bridge, err := StartEnvDBBridge(clock, db, st, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clock.Every(60*time.Second, func(now time.Duration) {
		db.Insert(envdb.Record{Time: now, Location: "R00-B0", Sensor: "input_power", Value: 2, Unit: "W"})
	})
	clock.Advance(3 * time.Minute)
	if bridge.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2 (batches before the straggler)", bridge.Dropped())
	}
	if bridge.Pending() != 0 {
		t.Errorf("Pending = %d, want 0 — out-of-order records must not be parked", bridge.Pending())
	}
	if !errors.Is(bridge.Err(), ErrOutOfOrder) {
		t.Errorf("Err = %v, want ErrOutOfOrder", bridge.Err())
	}
}
