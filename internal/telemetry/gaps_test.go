package telemetry

import (
	"errors"
	"testing"
	"time"

	"envmon/internal/trace"
)

func TestIngestGapCreatesSeriesAndOrders(t *testing.T) {
	st := New(Options{})
	key := SeriesKey{Node: "n0", Backend: "NVML", Domain: "Total Power"}
	// A device lost before its first successful read is still visible: the
	// gap creates the series.
	if err := st.IngestGap(key, "W", time.Second); err != nil {
		t.Fatal(err)
	}
	if st.NumSeries() != 1 || st.Gaps() != 1 {
		t.Fatalf("series = %d, gaps = %d", st.NumSeries(), st.Gaps())
	}
	infos := st.Series()
	if infos[0].Gaps != 1 || infos[0].Samples != 0 {
		t.Errorf("info = %+v, want 1 gap, 0 samples", infos[0])
	}
	// Gap times are ordered per series, independently of samples.
	if err := st.IngestGap(key, "W", 500*time.Millisecond); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("regressing gap time: err = %v, want ErrOutOfOrder", err)
	}
	if err := st.Ingest(key, "W", 100*time.Millisecond, 55); err != nil {
		t.Errorf("sample older than the gap rejected: %v", err)
	}
}

func TestQueryFramesCarryWindowedGaps(t *testing.T) {
	st := New(Options{})
	key := SeriesKey{Node: "n0", Backend: "NVML", Domain: "Total Power"}
	for i := 0; i < 10; i++ {
		ts := time.Duration(i) * time.Second
		if i >= 3 && i < 6 {
			if err := st.IngestGap(key, "W", ts); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := st.Ingest(key, "W", ts, 50+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames := st.Query(Query{From: 4 * time.Second, To: 9 * time.Second})
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	f := frames[0]
	if len(f.Points) != 3 { // 6s, 7s, 8s
		t.Errorf("points = %d, want 3", len(f.Points))
	}
	if len(f.Gaps) != 2 || f.Gaps[0] != 4*time.Second || f.Gaps[1] != 5*time.Second {
		t.Errorf("gaps = %v, want [4s 5s] (3s is outside the window)", f.Gaps)
	}
	// Rollup resolutions serve the same gap markers.
	frames = st.Query(Query{Resolution: Res1s})
	if len(frames[0].Gaps) != 3 {
		t.Errorf("rollup gaps = %v, want all 3", frames[0].Gaps)
	}
}

func TestMonEQSinkIngestsGaps(t *testing.T) {
	st := New(Options{})
	set := trace.NewSet()
	set.Meta["node"] = "n0"
	s := set.Add(trace.NewSeries("NVML/Total Power", "W"))
	s.MustAppend(0, 55)
	s.MustAppendGap(100 * time.Millisecond)
	if err := (MonEQSink{Store: st}).Write(set); err != nil {
		t.Fatal(err)
	}
	if st.Samples() != 1 || st.Gaps() != 1 {
		t.Errorf("samples = %d, gaps = %d, want 1 and 1", st.Samples(), st.Gaps())
	}
}

func TestSetCursorStreamsGapsIncrementally(t *testing.T) {
	st := New(Options{})
	set := trace.NewSet()
	set.Meta["node"] = "n0"
	s := set.Add(trace.NewSeries("NVML/Total Power", "W"))
	cur := NewSetCursor(st, "", set)

	s.MustAppend(0, 55)
	s.MustAppendGap(100 * time.Millisecond)
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Gaps() != 1 {
		t.Fatalf("gaps after first flush = %d", st.Gaps())
	}
	s.MustAppendGap(200 * time.Millisecond)
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Flush(); err != nil { // idempotent: nothing new
		t.Fatal(err)
	}
	if st.Gaps() != 2 {
		t.Errorf("gaps = %d, want 2 — Flush must not re-ingest old markers", st.Gaps())
	}
	if st.Samples() != 1 {
		t.Errorf("samples = %d, want 1", st.Samples())
	}
}
