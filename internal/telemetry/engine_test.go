package telemetry

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// smallOpts forces frequent compactions: tiny rings, tiny WAL budget.
func smallOpts(shards int) Options {
	return Options{Shards: shards, RawCapacity: 32, RollupCapacity: 4, GapCapacity: 8,
		WALSegmentBytes: 1 << 20}
}

// ingestWorkload drives a deterministic mixed workload: three series on
// two nodes, 50 ms cadence, occasional gaps.
func ingestWorkload(t *testing.T, st *Store, from, n int) {
	t.Helper()
	keys := []SeriesKey{
		{Node: "c000-001", Backend: "MSR", Domain: "Total Power"},
		{Node: "c000-001", Backend: "MSR", Domain: "DDR Power"},
		{Node: "c000-002", Backend: "NVML", Domain: "Total Power"},
	}
	for i := from; i < from+n; i++ {
		ts := time.Duration(i) * 50 * time.Millisecond
		for ki, key := range keys {
			if (i+ki)%17 == 0 {
				if err := st.IngestGap(key, "W", ts); err != nil {
					t.Fatalf("gap %d: %v", i, err)
				}
				continue
			}
			v := 200 + float64(ki)*25 + float64(i%13)*0.5
			if err := st.Ingest(key, "W", ts, v); err != nil {
				t.Fatalf("sample %d: %v", i, err)
			}
		}
	}
}

// allQueries snapshots every resolution plus TopK — the full read surface.
func allQueries(st *Store) (frames map[Resolution][]Frame, top []NodePower, total float64) {
	frames = map[Resolution][]Frame{}
	for _, res := range []Resolution{Raw, Res1s, Res10s, Res60s} {
		frames[res] = st.Query(Query{Resolution: res, Aggregate: AggMean})
	}
	top, total = st.TopK(10, "", 0, 0, Res1s)
	return frames, top, total
}

func TestPersistentMatchesMemoryAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ps, err := Open(dir, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	// A memory-only reference with rings big enough to never evict: the
	// persistent store must serve the identical full history even though
	// its tiny rings evicted most of it to blocks.
	ref := New(Options{Shards: 1, RawCapacity: 1 << 16, RollupCapacity: 1 << 12, GapCapacity: 1 << 12})
	ingestWorkload(t, ps, 0, 3000)
	ingestWorkload(t, ref, 0, 3000)

	if stats := ps.StorageStats(); !stats.Persistent || stats.Blocks == 0 {
		t.Fatalf("no compaction happened under pressure: %+v", stats)
	}

	pf, ptop, ptotal := allQueries(ps)
	rf, rtop, rtotal := allQueries(ref)
	if !reflect.DeepEqual(pf, rf) {
		t.Fatal("persistent store diverges from memory reference")
	}
	if !reflect.DeepEqual(ptop, rtop) || ptotal != rtotal {
		t.Fatalf("TopK diverges: %+v %v vs %+v %v", ptop, ptotal, rtop, rtotal)
	}

	// Reopen without a flush — recovery must replay the journal — and at a
	// different shard count, which must be unobservable.
	ps.Close()
	ps2, err := Open(dir, smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if ps2.recovered.Lost != 0 {
		t.Fatalf("recovery lost %d records", ps2.recovered.Lost)
	}
	qf, qtop, qtotal := allQueries(ps2)
	if !reflect.DeepEqual(qf, rf) {
		t.Fatal("reopened store diverges from pre-restart results")
	}
	if !reflect.DeepEqual(qtop, rtop) || qtotal != rtotal {
		t.Fatal("reopened TopK diverges")
	}

	// Ingest continues across the seam and both stores still agree.
	ingestWorkload(t, ps2, 3000, 500)
	ingestWorkload(t, ref, 3000, 500)
	qf2, _, _ := allQueries(ps2)
	rf2, _, _ := allQueries(ref)
	if !reflect.DeepEqual(qf2, rf2) {
		t.Fatal("post-restart ingest diverges from memory reference")
	}
}

func TestGapsSurviveFullRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := SeriesKey{Node: "c000-009", Backend: "MSR", Domain: "Total Power"}
	st, err := Open(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Only gaps — a device dead from the start must stay visible as such
	// through WAL replay and block compaction.
	for i := 0; i < 40; i++ {
		if err := st.IngestGap(key, "W", time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil { // push through to blocks
		t.Fatal(err)
	}
	for i := 40; i < 45; i++ { // and a few that only reach the WAL
		if err := st.IngestGap(key, "W", time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := Open(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	frames := st2.Query(Query{Node: key.Node})
	if len(frames) != 1 {
		t.Fatalf("got %d frames", len(frames))
	}
	f := frames[0]
	if len(f.Points) != 0 {
		t.Fatalf("gap-only series reported %d points", len(f.Points))
	}
	if len(f.Gaps) != 45 {
		t.Fatalf("round trip kept %d of 45 gap markers", len(f.Gaps))
	}
	for i, g := range f.Gaps {
		if g != time.Duration(i)*time.Second {
			t.Fatalf("gap %d = %v", i, g)
		}
	}
}

func TestFlushMakesStateBlockOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ingestWorkload(t, st, 0, 400)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	want, wtop, wtotal := allQueries(st)
	st.Close()

	// Destroy the journal: after a Flush the blocks alone must carry
	// everything.
	if err := os.RemoveAll(filepath.Join(dir, "wal")); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, gtop, gtotal := allQueries(st2)
	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gtop, wtop) || gtotal != wtotal {
		t.Fatal("block-only recovery diverges from flushed state")
	}
	if got := st2.StorageStats().Recovery.Samples; got != 0 {
		t.Fatalf("replayed %d samples after a full flush", got)
	}
}

func TestSeriesInfoReportsPersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ingestWorkload(t, st, 0, 200)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	ingestWorkload(t, st, 200, 10)
	for _, info := range st.Series() {
		if info.Persisted == 0 || info.Persisted >= info.Samples {
			t.Fatalf("series %v: persisted %d of %d samples", info.Key, info.Persisted, info.Samples)
		}
		if info.Oldest > 50*time.Millisecond {
			// The workload's first sample per series lands at t=0 or t=50ms
			// (one series opens with a gap marker), and blocks retain
			// everything, so Oldest must be that first sample even though
			// the tiny raw ring evicted it long ago.
			t.Fatalf("series %v: oldest %v, want <= 50ms", info.Key, info.Oldest)
		}
	}
}

func TestPersistentIngestSteadyStateZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	// Capacities large enough that the measured run never compacts.
	st, err := Open(dir, Options{Shards: 2, RawCapacity: 1 << 16,
		RollupCapacity: 1 << 12, GapCapacity: 1 << 12, WALSegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := SeriesKey{Node: "c000-001", Backend: "MSR", Domain: "Total Power"}
	if err := st.Ingest(key, "W", 0, 1); err != nil {
		t.Fatal(err)
	}
	i := time.Duration(1)
	allocs := testing.AllocsPerRun(500, func() {
		if err := st.Ingest(key, "W", i*time.Millisecond, 3.5); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("journaled steady-state ingest allocates %.1f times per sample, want 0", allocs)
	}
}
