// Package telemetry is the aggregation layer of the stack: a sharded
// time-series store that the collection pipeline streams into and that
// operator-facing tools query.
//
// The paper's end state is not samples on disk but a service: BG/Q ships
// its environmental data into a central database that tools query, and
// MonEQ exists so users consume power data without touching vendor
// mechanisms. This package is that service's storage engine. Producers —
// MonEQ sessions via MonEQSink/SetCursor, the BG/Q environmental database
// via EnvDBBridge — ingest into per-(node, backend, domain) series; the
// query layer (Query, TopK) serves windows of raw samples or multi-
// resolution rollups to the HTTP daemon in cmd/envmond.
//
// The store is a layered engine. New opens the head alone — the sharded
// in-memory tier of preallocated rings — which is the whole store for
// short-lived sessions and tests. Open layers durability beneath the same
// head: every acknowledged ingest is journaled to a per-shard write-ahead
// log (internal/telemetry/wal) before the rings absorb it, and sealed head
// data is compacted into immutable compressed block files
// (internal/telemetry/block) before the rings would evict it. Queries
// stitch blocks and head back together along per-series sample counts (the
// "count seam" — see internal/telemetry/storage), so a persistent store
// serves its full history while a memory-only store behaves exactly as the
// rings alone do.
//
// Design points:
//
//   - Series live in fixed-size ring buffers, so memory is bounded no
//     matter how long the daemon runs; old raw samples are evicted while
//     the rollup ladder (1 s → 10 s → 60 s buckets of min/max/mean/last)
//     retains the coarse history — and, when a data directory is
//     configured, evicted data is already sealed in blocks.
//   - Rollups are computed incrementally on ingest — one bucket update per
//     resolution level — never by rescanning raw data, so ingest cost does
//     not grow with series length and monitoring stays cheap enough not to
//     perturb the monitored workload.
//   - The series map is sharded by key hash with one lock per shard
//     (lock striping), so writers on different clock domains and concurrent
//     readers rarely contend. The WAL is segmented per shard, so journaling
//     rides the shard lock the ingest path already holds. Query results are
//     a pure function of the per-series ingest stream: the same stream
//     produces byte-identical results at any shard count, with or without
//     a restart in between.
//   - Steady-state ingest is allocation-free: the key is a comparable
//     struct (no string building), the hash is computed in place, all
//     buffers are preallocated rings, and the WAL appender reuses one
//     scratch buffer per shard.
package telemetry

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"envmon/internal/telemetry/block"
	"envmon/internal/telemetry/storage"
	"envmon/internal/telemetry/wal"
)

// SeriesKey identifies one stored series: a measurement domain of one
// backend mechanism on one node — e.g. {Node: "c401-003", Backend: "MSR",
// Domain: "Total Power"}. An alias of the storage layer's key type, so
// values flow between the head, WAL, and block tiers without conversion.
type SeriesKey = storage.SeriesKey

// SplitSeriesName splits a MonEQ trace series name ("method/capability",
// e.g. "MICRAS daemon/Total Power") into backend and domain at the first
// slash. A name without a slash becomes the domain of an empty backend.
// Slashes after the first stay in the domain ("MSR/DDR/GDDR Temperature"
// → backend "MSR", domain "DDR/GDDR Temperature").
func SplitSeriesName(name string) (backend, domain string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// Ingest and lifecycle errors. Sentinels, so the hot path never formats.
var (
	// ErrClosed is returned by Ingest after Close.
	ErrClosed = errors.New("telemetry: store is closed")
	// ErrOutOfOrder is returned when a sample's time precedes the series'
	// newest sample (or is negative). Equal timestamps are accepted.
	ErrOutOfOrder = errors.New("telemetry: out-of-order sample")
	// ErrSeriesLimit is returned when creating one more series would
	// exceed Options.MaxSeries.
	ErrSeriesLimit = errors.New("telemetry: series limit reached")
)

// Options parameterizes New. The zero value selects the defaults.
type Options struct {
	// Shards is the number of lock-striped shards the series map is split
	// across. Non-positive selects 8.
	Shards int
	// RawCapacity is the fixed ring size for raw samples per series;
	// older samples are evicted. Non-positive selects 4096.
	RawCapacity int
	// RollupCapacity is the fixed ring size, in buckets, of each rollup
	// level per series. Non-positive selects 1024 (at the coarsest 60 s
	// level that is ~17 hours of history).
	RollupCapacity int
	// MaxSeries caps the number of distinct series the store will create;
	// 0 means unlimited. The cap models the central server's finite
	// processing capacity (the envdb capacity limit, one layer up). Under
	// concurrent first-touch of new series the cap is approximate.
	MaxSeries int
	// GapCapacity is the fixed ring size for failed-poll markers per
	// series. Non-positive selects 1024.
	GapCapacity int
	// WALSegmentBytes caps a WAL shard segment's size in a persistent
	// store (Open): crossing it triggers a compaction, which seals the
	// journaled data into a block and drops the segment. Non-positive
	// selects 4 MiB. Ignored by memory-only stores.
	WALSegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.RawCapacity <= 0 {
		o.RawCapacity = 4096
	}
	if o.RollupCapacity <= 0 {
		o.RollupCapacity = 1024
	}
	if o.GapCapacity <= 0 {
		o.GapCapacity = 1024
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = 4 << 20
	}
	return o
}

// Store is the sharded time-series store. Safe for concurrent use by any
// number of writers and readers.
//
// A store from New is the head alone: in-memory rings, no durability. A
// store from Open layers a write-ahead log and a block store beneath the
// same head; see the package comment for the tiering.
type Store struct {
	opts    Options
	shards  []shard
	closed  atomic.Bool
	nseries atomic.Int64
	samples atomic.Uint64
	gaps    atomic.Uint64

	// Self-observability hooks (see obs.go); obs is nil in an
	// uninstrumented store and is set at wiring time, never after the
	// store is shared. ingestErrs counts rejected ingests — the only
	// inline instrumentation on the ingest path, and only on error
	// returns, which are off the steady-state path by definition.
	obs        *storeObs
	ingestErrs atomic.Uint64

	// Persistence tiers; all nil/zero in a memory-only store.
	dataDir     string
	wal         *wal.WAL
	blocks      *block.Store
	compactions atomic.Uint64
	readErrs    atomic.Uint64
	recovered   RecoveryStats
}

type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series

	// wal is the shard's journal appender (nil in a memory-only store);
	// walEpoch invalidates series' segment-scoped WAL refs on rotation.
	// Both guarded by mu.
	wal      *wal.Shard
	walEpoch uint64
}

// New returns an empty memory-only store.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	st := &Store{opts: opts, shards: make([]shard, opts.Shards)}
	for i := range st.shards {
		st.shards[i].series = make(map[SeriesKey]*series)
	}
	return st
}

// Ingest appends one sample to the keyed series, creating it on first
// touch (unit is recorded then; later values are ignored). Per series,
// sample times must be non-decreasing; across series there is no ordering
// requirement, which is what lets independent clock domains ingest
// concurrently. Steady-state ingest performs zero allocations.
//
// In a persistent store the sample is journaled to the shard's WAL before
// the rings absorb it, so a successful return means the sample survives a
// crash; when absorbing it would evict unpersisted data, the shard is
// compacted into a block first. A journaling or compaction failure rejects
// the ingest without mutating the head.
func (st *Store) Ingest(key SeriesKey, unit string, t time.Duration, v float64) error {
	if st.closed.Load() {
		st.ingestErrs.Add(1)
		return ErrClosed
	}
	if t < 0 {
		st.ingestErrs.Add(1)
		return ErrOutOfOrder
	}
	sh := &st.shards[key.Hash()%uint64(len(st.shards))]
	sh.mu.Lock()
	s := sh.series[key]
	if s == nil {
		if max := st.opts.MaxSeries; max > 0 && st.nseries.Load() >= int64(max) {
			sh.mu.Unlock()
			st.ingestErrs.Add(1)
			return ErrSeriesLimit
		}
		s = newSeries(key, unit, st.opts)
		sh.series[key] = s
		st.nseries.Add(1)
	}
	if s.count > 0 && t < s.lastT {
		sh.mu.Unlock()
		st.ingestErrs.Add(1)
		return ErrOutOfOrder
	}
	if sh.wal != nil {
		// Journal-append spans are sampled 1 in 1024 so the latency
		// histogram fills without two clock reads per acknowledged sample.
		o := st.obs
		timed := o != nil && s.count&1023 == 0
		var start time.Time
		if timed {
			start = time.Now()
		}
		if err := st.journalSampleLocked(sh, s, t, v); err != nil {
			sh.mu.Unlock()
			st.ingestErrs.Add(1)
			return err
		}
		if timed {
			o.walStage.Observe(time.Since(start), 0)
		}
	}
	s.append(t, v)
	sh.mu.Unlock()
	st.samples.Add(1)
	return nil
}

// IngestGap records an explicit "no data" marker at t for the keyed
// series: the collection mechanism fired but produced no value (device
// lost, read failed, breaker open). The series is created on first touch —
// a device that dies before its first successful read is still visible to
// queries, as a series of gaps — and gap times must be non-decreasing per
// series, independently of sample times.
func (st *Store) IngestGap(key SeriesKey, unit string, t time.Duration) error {
	if st.closed.Load() {
		st.ingestErrs.Add(1)
		return ErrClosed
	}
	if t < 0 {
		st.ingestErrs.Add(1)
		return ErrOutOfOrder
	}
	sh := &st.shards[key.Hash()%uint64(len(st.shards))]
	sh.mu.Lock()
	s := sh.series[key]
	if s == nil {
		if max := st.opts.MaxSeries; max > 0 && st.nseries.Load() >= int64(max) {
			sh.mu.Unlock()
			st.ingestErrs.Add(1)
			return ErrSeriesLimit
		}
		s = newSeries(key, unit, st.opts)
		sh.series[key] = s
		st.nseries.Add(1)
	}
	if s.gapCount > 0 && t < s.lastGapT {
		sh.mu.Unlock()
		st.ingestErrs.Add(1)
		return ErrOutOfOrder
	}
	if sh.wal != nil {
		if err := st.journalGapLocked(sh, s, t); err != nil {
			sh.mu.Unlock()
			st.ingestErrs.Add(1)
			return err
		}
	}
	s.gaps.push(t)
	s.lastGapT = t
	s.gapCount++
	sh.mu.Unlock()
	st.gaps.Add(1)
	return nil
}

// Close marks the store closed: subsequent Ingest calls fail with
// ErrClosed. Queries keep working — a drained store remains readable,
// including its block tier. A persistent store's WAL is synced and closed;
// call Flush first for the stronger guarantee that everything in memory is
// sealed into blocks.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		return
	}
	if st.wal != nil {
		// Take every shard lock so no journal append is mid-flight.
		for i := range st.shards {
			st.shards[i].mu.Lock()
		}
		_ = st.wal.Sync()
		_ = st.wal.Close()
		for i := range st.shards {
			st.shards[i].wal = nil
			st.shards[i].mu.Unlock()
		}
	}
}

// Closed reports whether Close has been called. The serving layer uses it
// to turn queries racing a shutdown into an explicit 503 instead of
// serving from a store whose persistence tiers are going away.
func (st *Store) Closed() bool { return st.closed.Load() }

// NumSeries reports the number of distinct series.
func (st *Store) NumSeries() int { return int(st.nseries.Load()) }

// Samples reports the total number of samples ever ingested (including
// ones since evicted from raw rings).
func (st *Store) Samples() uint64 { return st.samples.Load() }

// Gaps reports the total number of gap markers ever ingested.
func (st *Store) Gaps() uint64 { return st.gaps.Load() }

// SeriesInfo summarizes one stored series for listings.
type SeriesInfo struct {
	Key     SeriesKey
	Unit    string
	Samples uint64 // total ever ingested into this series
	Gaps    uint64 // total failed-poll markers ever ingested
	// Persisted is how many leading samples are sealed in blocks (0 in a
	// memory-only store).
	Persisted uint64
	// Oldest is the oldest raw sample still retrievable: the oldest sample
	// in the ring for a memory-only store, the series' first sample ever
	// for a persistent one (blocks retain everything).
	Oldest time.Duration
	Newest time.Duration // newest sample
}

// Series lists every stored series, sorted by key, so output is
// deterministic at any shard count.
func (st *Store) Series() []SeriesInfo {
	var out []SeriesInfo
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			info := SeriesInfo{Key: s.key, Unit: s.unit, Samples: s.count, Gaps: s.gapCount,
				Persisted: s.persisted, Newest: s.lastT}
			if st.blocks != nil && s.count > 0 {
				info.Oldest = s.minT
			} else if p, ok := s.raw.first(); ok {
				info.Oldest = p.T
			}
			out = append(out, info)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}

// lessKey orders keys deterministically; an alias of the storage layer's
// ordering so listings, frames, and block indexes all agree.
func lessKey(a, b SeriesKey) bool { return storage.KeyLess(a, b) }
