// Package telemetry is the aggregation layer of the stack: a sharded
// in-memory time-series store that the collection pipeline streams into and
// that operator-facing tools query.
//
// The paper's end state is not samples on disk but a service: BG/Q ships
// its environmental data into a central database that tools query, and
// MonEQ exists so users consume power data without touching vendor
// mechanisms. This package is that service's storage engine. Producers —
// MonEQ sessions via MonEQSink/SetCursor, the BG/Q environmental database
// via EnvDBBridge — ingest into per-(node, backend, domain) series; the
// query layer (Query, TopK) serves windows of raw samples or multi-
// resolution rollups to the HTTP daemon in cmd/envmond.
//
// Design points:
//
//   - Series live in fixed-size ring buffers, so memory is bounded no
//     matter how long the daemon runs; old raw samples are evicted while
//     the rollup ladder (1 s → 10 s → 60 s buckets of min/max/mean/last)
//     retains the coarse history.
//   - Rollups are computed incrementally on ingest — one bucket update per
//     resolution level — never by rescanning raw data, so ingest cost does
//     not grow with series length and monitoring stays cheap enough not to
//     perturb the monitored workload.
//   - The series map is sharded by key hash with one lock per shard
//     (lock striping), so writers on different clock domains and concurrent
//     readers rarely contend. Rollup contents are a pure function of the
//     per-series ingest stream: the same stream produces byte-identical
//     query results at any shard count.
//   - Steady-state ingest is allocation-free: the key is a comparable
//     struct (no string building), the hash is computed in place, and all
//     buffers are preallocated rings.
package telemetry

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SeriesKey identifies one stored series: a measurement domain of one
// backend mechanism on one node — e.g. {Node: "c401-003", Backend: "MSR",
// Domain: "Total Power"}.
type SeriesKey struct {
	Node    string
	Backend string
	Domain  string
}

// SplitSeriesName splits a MonEQ trace series name ("method/capability",
// e.g. "MICRAS daemon/Total Power") into backend and domain at the first
// slash. A name without a slash becomes the domain of an empty backend.
// Slashes after the first stay in the domain ("MSR/DDR/GDDR Temperature"
// → backend "MSR", domain "DDR/GDDR Temperature").
func SplitSeriesName(name string) (backend, domain string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// hash folds the key through FNV-1a with a terminator byte per field, so
// {"ab","c"} and {"a","bc"} shard differently. Computed in place: no
// string concatenation, no allocation.
func (k SeriesKey) hash() uint64 {
	h := uint64(14695981039346656037)
	h = fnvField(h, k.Node)
	h = fnvField(h, k.Backend)
	h = fnvField(h, k.Domain)
	return h
}

func fnvField(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= 0xff
	h *= 1099511628211
	return h
}

// Ingest and lifecycle errors. Sentinels, so the hot path never formats.
var (
	// ErrClosed is returned by Ingest after Close.
	ErrClosed = errors.New("telemetry: store is closed")
	// ErrOutOfOrder is returned when a sample's time precedes the series'
	// newest sample (or is negative). Equal timestamps are accepted.
	ErrOutOfOrder = errors.New("telemetry: out-of-order sample")
	// ErrSeriesLimit is returned when creating one more series would
	// exceed Options.MaxSeries.
	ErrSeriesLimit = errors.New("telemetry: series limit reached")
)

// Options parameterizes New. The zero value selects the defaults.
type Options struct {
	// Shards is the number of lock-striped shards the series map is split
	// across. Non-positive selects 8.
	Shards int
	// RawCapacity is the fixed ring size for raw samples per series;
	// older samples are evicted. Non-positive selects 4096.
	RawCapacity int
	// RollupCapacity is the fixed ring size, in buckets, of each rollup
	// level per series. Non-positive selects 1024 (at the coarsest 60 s
	// level that is ~17 hours of history).
	RollupCapacity int
	// MaxSeries caps the number of distinct series the store will create;
	// 0 means unlimited. The cap models the central server's finite
	// processing capacity (the envdb capacity limit, one layer up). Under
	// concurrent first-touch of new series the cap is approximate.
	MaxSeries int
	// GapCapacity is the fixed ring size for failed-poll markers per
	// series. Non-positive selects 1024.
	GapCapacity int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.RawCapacity <= 0 {
		o.RawCapacity = 4096
	}
	if o.RollupCapacity <= 0 {
		o.RollupCapacity = 1024
	}
	if o.GapCapacity <= 0 {
		o.GapCapacity = 1024
	}
	return o
}

// Store is the sharded time-series store. Safe for concurrent use by any
// number of writers and readers.
type Store struct {
	opts    Options
	shards  []shard
	closed  atomic.Bool
	nseries atomic.Int64
	samples atomic.Uint64
	gaps    atomic.Uint64
}

type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
}

// New returns an empty store.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	st := &Store{opts: opts, shards: make([]shard, opts.Shards)}
	for i := range st.shards {
		st.shards[i].series = make(map[SeriesKey]*series)
	}
	return st
}

// Ingest appends one sample to the keyed series, creating it on first
// touch (unit is recorded then; later values are ignored). Per series,
// sample times must be non-decreasing; across series there is no ordering
// requirement, which is what lets independent clock domains ingest
// concurrently. Steady-state ingest performs zero allocations.
func (st *Store) Ingest(key SeriesKey, unit string, t time.Duration, v float64) error {
	if st.closed.Load() {
		return ErrClosed
	}
	if t < 0 {
		return ErrOutOfOrder
	}
	sh := &st.shards[key.hash()%uint64(len(st.shards))]
	sh.mu.Lock()
	s := sh.series[key]
	if s == nil {
		if max := st.opts.MaxSeries; max > 0 && st.nseries.Load() >= int64(max) {
			sh.mu.Unlock()
			return ErrSeriesLimit
		}
		s = newSeries(key, unit, st.opts)
		sh.series[key] = s
		st.nseries.Add(1)
	}
	if s.count > 0 && t < s.lastT {
		sh.mu.Unlock()
		return ErrOutOfOrder
	}
	s.append(t, v)
	sh.mu.Unlock()
	st.samples.Add(1)
	return nil
}

// IngestGap records an explicit "no data" marker at t for the keyed
// series: the collection mechanism fired but produced no value (device
// lost, read failed, breaker open). The series is created on first touch —
// a device that dies before its first successful read is still visible to
// queries, as a series of gaps — and gap times must be non-decreasing per
// series, independently of sample times.
func (st *Store) IngestGap(key SeriesKey, unit string, t time.Duration) error {
	if st.closed.Load() {
		return ErrClosed
	}
	if t < 0 {
		return ErrOutOfOrder
	}
	sh := &st.shards[key.hash()%uint64(len(st.shards))]
	sh.mu.Lock()
	s := sh.series[key]
	if s == nil {
		if max := st.opts.MaxSeries; max > 0 && st.nseries.Load() >= int64(max) {
			sh.mu.Unlock()
			return ErrSeriesLimit
		}
		s = newSeries(key, unit, st.opts)
		sh.series[key] = s
		st.nseries.Add(1)
	}
	if s.gapCount > 0 && t < s.lastGapT {
		sh.mu.Unlock()
		return ErrOutOfOrder
	}
	s.gaps.push(t)
	s.lastGapT = t
	s.gapCount++
	sh.mu.Unlock()
	st.gaps.Add(1)
	return nil
}

// Close marks the store closed: subsequent Ingest calls fail with
// ErrClosed. Queries keep working — a drained store remains readable.
func (st *Store) Close() { st.closed.Store(true) }

// NumSeries reports the number of distinct series.
func (st *Store) NumSeries() int { return int(st.nseries.Load()) }

// Samples reports the total number of samples ever ingested (including
// ones since evicted from raw rings).
func (st *Store) Samples() uint64 { return st.samples.Load() }

// Gaps reports the total number of gap markers ever ingested.
func (st *Store) Gaps() uint64 { return st.gaps.Load() }

// SeriesInfo summarizes one stored series for listings.
type SeriesInfo struct {
	Key     SeriesKey
	Unit    string
	Samples uint64        // total ever ingested into this series
	Gaps    uint64        // total failed-poll markers ever ingested
	Oldest  time.Duration // oldest raw sample still held
	Newest  time.Duration // newest sample
}

// Series lists every stored series, sorted by key, so output is
// deterministic at any shard count.
func (st *Store) Series() []SeriesInfo {
	var out []SeriesInfo
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			info := SeriesInfo{Key: s.key, Unit: s.unit, Samples: s.count, Gaps: s.gapCount, Newest: s.lastT}
			if p, ok := s.raw.first(); ok {
				info.Oldest = p.T
			}
			out = append(out, info)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}

func lessKey(a, b SeriesKey) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Backend != b.Backend {
		return a.Backend < b.Backend
	}
	return a.Domain < b.Domain
}
