package telemetry

import (
	"fmt"
	"path/filepath"
	"time"

	"envmon/internal/telemetry/block"
	"envmon/internal/telemetry/storage"
	"envmon/internal/telemetry/wal"
)

// This file is the persistence engine beneath the head: opening a data
// directory (block scan + WAL replay), the WAL-ahead journaling the ingest
// path calls, and compaction — sealing each shard's unpersisted tail into
// a block and dropping the journal segment it came from.
//
// Layout under the data directory:
//
//	<dir>/wal/<shard>/<seq>.wal   write-ahead log (internal/telemetry/wal)
//	<dir>/blocks/b-<seq>.blk      compacted blocks (internal/telemetry/block)
//
// Lock order is shard.mu before the block store's internal lock, on both
// the write path (ingest → compaction → block append) and the read path
// (query → block chunk reads).

// Open opens a persistent store rooted at dir, creating the directory
// layout on first use and recovering on every later one: block indexes
// seed each series' persisted watermarks and rollup tails, the WAL replays
// whatever the last run had acknowledged but not yet compacted, and the
// replayed tail is immediately compacted into a block so the store starts
// with an empty journal. Recovery is idempotent — every journal record
// carries its series' absolute index, so records an existing block already
// covers are skipped — and tolerates a torn record at each segment's tail
// (the write the dying process never finished, never acknowledged).
func Open(dir string, opts Options) (*Store, error) {
	st := New(opts)
	st.dataDir = dir

	blocks, err := block.Open(filepath.Join(dir, "blocks"))
	if err != nil {
		return nil, err
	}
	st.blocks = blocks

	// Seed the head from the block indexes: per series, the persisted
	// watermarks, newest instants, and each rollup level's open tail
	// bucket, so incremental accumulation resumes exactly where the
	// sealed data ends.
	blocks.Each(func(key storage.SeriesKey, a block.Agg) {
		s := st.recoverSeries(key, a.Unit)
		s.persisted, s.count = a.Points, a.Points
		s.gapsPersisted, s.gapCount = a.Gaps, a.Gaps
		s.minT, s.lastT, s.lastGapT = a.MinT, a.LastT, a.LastGapT
		for l := range s.roll {
			s.bucketsPersisted[l] = a.Buckets[l]
			s.bucketsTotal[l] = a.Buckets[l]
			if a.Tails[l] != nil {
				s.roll[l].push(*a.Tails[l])
				s.bucketsTotal[l]++
			}
		}
		st.samples.Add(a.Points)
		st.gaps.Add(a.Gaps)
	})

	// Replay the journal on top. Records arrive sorted by (series, index);
	// anything below the series' watermark is a duplicate from an
	// interrupted compaction, anything at the watermark is applied, and an
	// index beyond it means the journal lost acknowledged records (counted,
	// not invented).
	walDir := filepath.Join(dir, "wal")
	samples, gaps, err := wal.Replay(walDir)
	if err != nil {
		blocks.Close()
		return nil, err
	}
	for _, smp := range samples {
		s := st.recoverSeries(smp.Key, smp.Unit)
		switch {
		case smp.Index < s.count:
			// already persisted (or duplicated in an older segment)
		case smp.Index == s.count:
			s.append(smp.T, smp.V)
			st.samples.Add(1)
			st.recovered.Samples++
		default:
			st.recovered.Lost++
		}
	}
	for _, g := range gaps {
		s := st.recoverSeries(g.Key, g.Unit)
		switch {
		case g.Index < s.gapCount:
		case g.Index == s.gapCount:
			s.gaps.push(g.T)
			s.lastGapT = g.T
			s.gapCount++
			st.gaps.Add(1)
			st.recovered.Gaps++
		default:
			st.recovered.Lost++
		}
	}
	st.recovered.Series = int(st.nseries.Load())

	w, err := wal.Create(walDir, st.opts.Shards)
	if err != nil {
		blocks.Close()
		return nil, err
	}
	st.wal = w
	for i := range st.shards {
		st.shards[i].wal = w.Shard(i)
		st.shards[i].walEpoch = 1
	}

	// Seal the replayed tail into a block and drop the recovered segments,
	// so a second crash re-reads blocks, not a growing journal. Forced, so
	// even shards with nothing new rotate away their old segments.
	for i := range st.shards {
		sh := &st.shards[i]
		if err := st.compactShardLocked(sh, true); err != nil {
			st.Close()
			blocks.Close()
			return nil, err
		}
	}
	return st, nil
}

// recoverSeries returns the series for key, creating it unjournaled. Only
// called from Open, before the store is shared, so no locks are taken.
func (st *Store) recoverSeries(key SeriesKey, unit string) *series {
	sh := &st.shards[key.Hash()%uint64(len(st.shards))]
	s := sh.series[key]
	if s == nil {
		s = newSeries(key, unit, st.opts)
		sh.series[key] = s
		st.nseries.Add(1)
	}
	return s
}

// journalSampleLocked makes the sample durable before the head absorbs it:
// compact first if absorbing it would evict unpersisted data (or the
// segment is over budget), then append the record at the sample's absolute
// index. Caller holds sh.mu and has validated time order.
func (st *Store) journalSampleLocked(sh *shard, s *series, t time.Duration, v float64) error {
	if st.samplePressureLocked(sh, s, t) {
		if err := st.compactShardLocked(sh, false); err != nil {
			return err
		}
	}
	if s.walEpoch != sh.walEpoch {
		ref, err := sh.wal.AppendSeries(s.key, s.unit)
		if err != nil {
			return err
		}
		s.walRef, s.walEpoch = ref, sh.walEpoch
	}
	return sh.wal.AppendSample(s.walRef, s.count, t, v)
}

// journalGapLocked is journalSampleLocked for gap markers.
func (st *Store) journalGapLocked(sh *shard, s *series, t time.Duration) error {
	if sh.wal.Size() >= st.opts.WALSegmentBytes ||
		(s.gaps.len() == st.opts.GapCapacity && s.gapCount-uint64(st.opts.GapCapacity) >= s.gapsPersisted) {
		if err := st.compactShardLocked(sh, false); err != nil {
			return err
		}
	}
	if s.walEpoch != sh.walEpoch {
		ref, err := sh.wal.AppendSeries(s.key, s.unit)
		if err != nil {
			return err
		}
		s.walRef, s.walEpoch = ref, sh.walEpoch
	}
	return sh.wal.AppendGap(s.walRef, s.gapCount, t)
}

// samplePressureLocked reports whether absorbing a sample at t would push
// unpersisted data out of a ring (the raw ring, or a full rollup ring
// about to open a new bucket) or the WAL segment is over budget — the
// moments compaction must run first.
func (st *Store) samplePressureLocked(sh *shard, s *series, t time.Duration) bool {
	if sh.wal.Size() >= st.opts.WALSegmentBytes {
		return true
	}
	if s.raw.len() == st.opts.RawCapacity && s.count-uint64(st.opts.RawCapacity) >= s.persisted {
		return true
	}
	for l, period := range rollupPeriods {
		rb := &s.roll[l]
		if rb.len() < st.opts.RollupCapacity {
			continue
		}
		if b := rb.tail(); b != nil && b.Start == t-t%period {
			continue // absorbed by the tail: no push, no eviction
		}
		if s.bucketsTotal[l]-uint64(st.opts.RollupCapacity) >= s.bucketsPersisted[l] {
			return true
		}
	}
	return false
}

// compactShardLocked seals every series' unpersisted tail in the shard
// into one block, advances the watermarks, and rotates the shard's WAL
// (the journaled records are all in the block now). force rotates even
// when there is nothing to seal — Open uses it to drop recovered
// segments. Caller holds sh.mu; lock order shard → blocks.
func (st *Store) compactShardLocked(sh *shard, force bool) error {
	var snaps []storage.SeriesSnapshot
	for _, s := range sh.series {
		if s.count > s.persisted || s.gapCount > s.gapsPersisted {
			snaps = append(snaps, s.snapshotLocked())
		}
	}
	if len(snaps) == 0 && !force {
		return nil
	}
	o := st.obs
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	if len(snaps) > 0 {
		if err := st.blocks.Append(snaps); err != nil {
			return err
		}
		for _, s := range sh.series {
			s.markPersistedLocked()
		}
		st.compactions.Add(1)
	}
	if err := sh.wal.Rotate(); err != nil {
		return err
	}
	sh.walEpoch++
	if o != nil {
		wall := time.Since(start)
		o.compactStage.Observe(wall, 0)
		o.slow.Observe("compaction", wall, 0, func() string {
			return fmt.Sprintf("series=%d forced=%v", len(snaps), force)
		})
	}
	return nil
}

// snapshotLocked seals the series' unpersisted tail for a block writer:
// the ring-resident samples, gaps, and sealed buckets past each watermark,
// plus every level's open-tail state. The pressure checks guarantee the
// unpersisted tail is still ring-resident; the clamps below only matter if
// a capacity was shrunk between runs, where the overflow is surfaced as an
// index hole rather than silently misattributed.
func (s *series) snapshotLocked() storage.SeriesSnapshot {
	sn := storage.SeriesSnapshot{Key: s.key, Unit: s.unit,
		StartPoint: s.persisted, StartGap: s.gapsPersisted,
		LastT: s.lastT, LastGapT: s.lastGapT}
	n := uint64(s.raw.len())
	if u := s.count - s.persisted; u > 0 {
		if u > n {
			u = n
			sn.StartPoint = s.count - n
		}
		for i := n - u; i < n; i++ {
			sn.Points = append(sn.Points, s.raw.at(int(i)))
		}
	}
	gn := uint64(s.gaps.len())
	if u := s.gapCount - s.gapsPersisted; u > 0 {
		if u > gn {
			u = gn
			sn.StartGap = s.gapCount - gn
		}
		for i := gn - u; i < gn; i++ {
			sn.Gaps = append(sn.Gaps, s.gaps.at(int(i)))
		}
	}
	for l := range s.roll {
		rb := &s.roll[l]
		bn := uint64(rb.len())
		if bn == 0 {
			continue
		}
		lv := &sn.Levels[l]
		lv.StartBucket = s.bucketsPersisted[l]
		if u := (s.bucketsTotal[l] - 1) - s.bucketsPersisted[l]; u > 0 {
			if u > bn-1 {
				u = bn - 1
				lv.StartBucket = (s.bucketsTotal[l] - 1) - u
			}
			for i := bn - 1 - u; i < bn-1; i++ {
				lv.Closed = append(lv.Closed, rb.at(int(i)))
			}
		}
		tb := *rb.tail()
		lv.Tail = &tb
	}
	return sn
}

// markPersistedLocked advances the watermarks after a successful block
// append: everything currently in memory is sealed.
func (s *series) markPersistedLocked() {
	s.persisted = s.count
	s.gapsPersisted = s.gapCount
	for l := range s.bucketsTotal {
		if s.bucketsTotal[l] > 0 {
			s.bucketsPersisted[l] = s.bucketsTotal[l] - 1
		}
	}
}

// Flush compacts every shard's unpersisted tail into blocks. After a
// successful Flush the in-memory state is fully reconstructible from the
// block store alone — the guarantee a daemon wants before exiting. A
// memory-only store flushes trivially.
func (st *Store) Flush() error {
	if st.wal == nil {
		return nil
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		var err error
		if sh.wal != nil {
			err = st.compactShardLocked(sh, false)
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("telemetry: flush: %w", err)
		}
	}
	return nil
}

// RecoveryStats describes what Open reconstructed from the data directory.
type RecoveryStats struct {
	// Series is the number of series restored (blocks and journal).
	Series int
	// Samples / Gaps are the records replayed from the WAL — acknowledged
	// ingests the last run had not yet compacted.
	Samples uint64
	Gaps    uint64
	// Lost counts journal records that could not be applied because their
	// index was past the series' end — acknowledged data the journal no
	// longer accounts for. Zero in every crash the engine models.
	Lost uint64
}

// StorageStats is a point-in-time view of the persistence tiers, for
// health endpoints. The zero value (Persistent false) is a memory-only
// store.
type StorageStats struct {
	Persistent  bool
	DataDir     string
	Blocks      int    // sealed block files
	BlockBytes  int64  // total block file bytes
	WALBytes    int64  // live journal bytes across shards
	Compactions uint64 // blocks written since open
	ReadErrors  uint64 // block read failures during queries
	Recovery    RecoveryStats
}

// StorageStats reports the persistence tiers' current state.
func (st *Store) StorageStats() StorageStats {
	if st.blocks == nil {
		return StorageStats{}
	}
	stats := StorageStats{
		Persistent:  true,
		DataDir:     st.dataDir,
		Blocks:      st.blocks.NumBlocks(),
		BlockBytes:  st.blocks.Bytes(),
		Compactions: st.compactions.Load(),
		ReadErrors:  st.readErrs.Load(),
		Recovery:    st.recovered,
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		if sh.wal != nil {
			stats.WALBytes += sh.wal.Size()
		}
		sh.mu.RUnlock()
	}
	return stats
}

// MaxTime reports the newest sample or gap instant across every series (0
// when empty). A restarting daemon offsets its clock past this so new
// ingests never run backwards against recovered series.
func (st *Store) MaxTime() time.Duration {
	var max time.Duration
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if s.count > 0 && s.lastT > max {
				max = s.lastT
			}
			if s.gapCount > 0 && s.lastGapT > max {
				max = s.lastGapT
			}
		}
		sh.mu.RUnlock()
	}
	return max
}
