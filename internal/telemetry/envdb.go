package telemetry

import (
	"errors"
	"fmt"
	"time"

	"envmon/internal/core"
	"envmon/internal/envdb"
)

// EnvDBBackend is the SeriesKey.Backend under which environmental-database
// records are stored: the BG/Q path where data reaches tools through the
// central database rather than through a per-job MonEQ session.
const EnvDBBackend = "envdb"

// Ingester is the subset of Store the bridge writes through. An interface
// so tests can interpose transient ingest failures.
type Ingester interface {
	Ingest(key SeriesKey, unit string, t time.Duration, v float64) error
}

// EnvDBBridge periodically drains new environmental-database records into
// a store — the second producer feeding the aggregation layer. Each record
// becomes a sample of the series {Node: location, Backend: "envdb",
// Domain: sensor}.
//
// The bridge scans the half-open window [cursor, now) each time its timer
// fires, so records stamped exactly at the firing instant are picked up on
// the next round regardless of the relative order of the database poller's
// and the bridge's timers. Per (location, sensor), database insertion
// order is time order (pollers only move forward), which satisfies the
// store's per-series ordering requirement.
//
// A failing store never loses records: when an ingest fails, the record
// and everything scanned after it are parked in a pending queue — in
// database order — and replayed at the head of the next drain, so a
// transient outage delays data instead of dropping it. Only records the
// store rejects as out-of-order are dropped (and counted): replaying those
// can never succeed.
type EnvDBBridge struct {
	// Offset is added to every record's time on ingest — the same restart
	// continuity knob as SetCursor.Offset. Set it right after
	// StartEnvDBBridge, before the clock first fires the drain timer.
	Offset time.Duration

	store   Ingester
	db      *envdb.DB
	timer   core.Timer
	cursor  time.Duration
	pending []envdb.Record
	polls   int
	moved   int
	dropped int
	err     error
}

// StartEnvDBBridge schedules a bridge from db into store on the clock,
// draining every interval. The first drain runs one interval from now.
func StartEnvDBBridge(clock core.Clock, db *envdb.DB, store Ingester, interval time.Duration) (*EnvDBBridge, error) {
	if db == nil || store == nil {
		return nil, fmt.Errorf("telemetry: envdb bridge needs a database and a store")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: envdb bridge interval must be positive, got %v", interval)
	}
	b := &EnvDBBridge{store: store, db: db}
	b.timer = clock.Every(interval, b.drain)
	return b, nil
}

func (b *EnvDBBridge) drain(now time.Duration) {
	b.polls++
	// Replay the backlog first, in database order. On the first store
	// failure, keep the failing record and everything after it — attempting
	// later records while an earlier one is parked could ingest a
	// same-series successor first and turn a transient outage into
	// permanent out-of-order drops.
	backlog := b.pending
	b.pending = b.pending[:0]
	stalled := false
	for i := range backlog {
		if !b.tryIngest(backlog[i]) {
			b.pending = append(b.pending, backlog[i:]...)
			stalled = true
			break
		}
	}
	// Scan the new window. The cursor always advances to now, but every
	// scanned record either reaches the store or joins the queue, so
	// nothing the scan visited is ever lost.
	b.db.Scan(b.cursor, now, func(r envdb.Record) {
		if stalled {
			b.pending = append(b.pending, r)
			return
		}
		if !b.tryIngest(r) {
			b.pending = append(b.pending, r)
			stalled = true
		}
	})
	b.cursor = now
}

// tryIngest moves one record into the store. It reports false only for
// failures that may heal on retry (the caller parks the record); records
// rejected as out-of-order are dropped and counted, since replaying them
// is futile.
func (b *EnvDBBridge) tryIngest(r envdb.Record) bool {
	key := SeriesKey{Node: string(r.Location), Backend: EnvDBBackend, Domain: r.Sensor}
	err := b.store.Ingest(key, r.Unit, r.Time+b.Offset, r.Value)
	if err == nil {
		b.moved++
		return true
	}
	b.err = fmt.Errorf("telemetry: envdb bridge: %s/%s: %w", r.Location, r.Sensor, err)
	if errors.Is(err, ErrOutOfOrder) {
		b.dropped++
		return true
	}
	return false
}

// Stop cancels future drains.
func (b *EnvDBBridge) Stop() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}

// Moved reports how many records have been ingested so far.
func (b *EnvDBBridge) Moved() int { return b.moved }

// Pending reports how many scanned records are parked awaiting a healthy
// store.
func (b *EnvDBBridge) Pending() int { return len(b.pending) }

// Dropped reports how many records the store permanently rejected as
// out-of-order.
func (b *EnvDBBridge) Dropped() int { return b.dropped }

// Err reports the most recent ingest failure, if any; draining continues
// past failures the way MonEQ keeps polling through backend faults.
func (b *EnvDBBridge) Err() error { return b.err }
