package telemetry

import (
	"fmt"
	"time"

	"envmon/internal/core"
	"envmon/internal/envdb"
)

// EnvDBBackend is the SeriesKey.Backend under which environmental-database
// records are stored: the BG/Q path where data reaches tools through the
// central database rather than through a per-job MonEQ session.
const EnvDBBackend = "envdb"

// EnvDBBridge periodically drains new environmental-database records into
// a store — the second producer feeding the aggregation layer. Each record
// becomes a sample of the series {Node: location, Backend: "envdb",
// Domain: sensor}.
//
// The bridge scans the half-open window [cursor, now) each time its timer
// fires, so records stamped exactly at the firing instant are picked up on
// the next round regardless of the relative order of the database poller's
// and the bridge's timers. Per (location, sensor), database insertion
// order is time order (pollers only move forward), which satisfies the
// store's per-series ordering requirement.
type EnvDBBridge struct {
	store  *Store
	db     *envdb.DB
	timer  core.Timer
	cursor time.Duration
	polls  int
	moved  int
	err    error
}

// StartEnvDBBridge schedules a bridge from db into store on the clock,
// draining every interval. The first drain runs one interval from now.
func StartEnvDBBridge(clock core.Clock, db *envdb.DB, store *Store, interval time.Duration) (*EnvDBBridge, error) {
	if db == nil || store == nil {
		return nil, fmt.Errorf("telemetry: envdb bridge needs a database and a store")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: envdb bridge interval must be positive, got %v", interval)
	}
	b := &EnvDBBridge{store: store, db: db}
	b.timer = clock.Every(interval, b.drain)
	return b, nil
}

func (b *EnvDBBridge) drain(now time.Duration) {
	b.polls++
	b.db.Scan(b.cursor, now, func(r envdb.Record) {
		key := SeriesKey{Node: string(r.Location), Backend: EnvDBBackend, Domain: r.Sensor}
		if err := b.store.Ingest(key, r.Unit, r.Time, r.Value); err != nil {
			b.err = fmt.Errorf("telemetry: envdb bridge: %s/%s: %w", r.Location, r.Sensor, err)
			return
		}
		b.moved++
	})
	b.cursor = now
}

// Stop cancels future drains.
func (b *EnvDBBridge) Stop() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}

// Moved reports how many records have been ingested so far.
func (b *EnvDBBridge) Moved() int { return b.moved }

// Err reports the most recent ingest failure, if any; draining continues
// past failures the way MonEQ keeps polling through backend faults.
func (b *EnvDBBridge) Err() error { return b.err }
