package block

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"envmon/internal/telemetry/storage"
)

var (
	keyA = storage.SeriesKey{Node: "c000-001", Backend: "MSR", Domain: "Total Power"}
	keyB = storage.SeriesKey{Node: "c000-002", Backend: "NVML", Domain: "Total Power"}
)

func snapshotA(start uint64, n int, base time.Duration) storage.SeriesSnapshot {
	sn := storage.SeriesSnapshot{Key: keyA, Unit: "W", StartPoint: start}
	for i := 0; i < n; i++ {
		sn.Points = append(sn.Points, storage.Point{
			T: base + time.Duration(i)*time.Second,
			V: 100 + float64(start) + float64(i)*0.5,
		})
	}
	sn.LastT = sn.Points[len(sn.Points)-1].T
	return sn
}

func TestAppendOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	sn := snapshotA(0, 50, 0)
	sn.StartGap = 0
	sn.Gaps = []time.Duration{7 * time.Second, 9 * time.Second}
	sn.LastGapT = 9 * time.Second
	sn.Levels[0] = storage.LevelSnapshot{
		StartBucket: 0,
		Closed: []storage.Bucket{
			{Start: 0, Count: 1, Min: 100, Max: 100, Sum: 100, Last: 100},
			{Start: time.Second, Count: 1, Min: 100.5, Max: 100.5, Sum: 100.5, Last: 100.5},
		},
		Tail: &storage.Bucket{Start: 2 * time.Second, Count: 1, Min: 101, Max: 101, Sum: 101, Last: 101},
	}
	snB := storage.SeriesSnapshot{Key: keyB, Unit: "W", StartPoint: 0,
		Points: []storage.Point{{T: 3 * time.Second, V: 55}}, LastT: 3 * time.Second}
	if err := s.Append([]storage.SeriesSnapshot{sn, snB}); err != nil {
		t.Fatal(err)
	}
	// Second block continues series A at index 50.
	if err := s.Append([]storage.SeriesSnapshot{snapshotA(50, 25, 50*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: aggregates and data must survive.
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumBlocks() != 2 || s.NumSeries() != 2 {
		t.Fatalf("NumBlocks=%d NumSeries=%d, want 2 and 2", s.NumBlocks(), s.NumSeries())
	}
	a, ok := s.Agg(keyA)
	if !ok {
		t.Fatal("series A missing after reopen")
	}
	if a.Points != 75 || a.Gaps != 2 || a.Unit != "W" {
		t.Fatalf("agg A = %+v", a)
	}
	if a.MinT != 0 || a.LastT != 50*time.Second+24*time.Second || a.LastGapT != 9*time.Second {
		t.Fatalf("agg A instants = %+v", a)
	}
	if a.Buckets[0] != 2 || a.Tails[0] == nil || a.Tails[0].Start != 2*time.Second {
		t.Fatalf("agg A level 0 = buckets %d tail %+v", a.Buckets[0], a.Tails[0])
	}

	var pts []storage.Point
	if err := s.EachPoint(keyA, 0, 0, func(p storage.Point) { pts = append(pts, p) }); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 75 {
		t.Fatalf("EachPoint streamed %d points, want 75", len(pts))
	}
	if pts[50].T != 50*time.Second || pts[50].V != 150 {
		t.Fatalf("seam point = %+v", pts[50])
	}

	// Window filter: [5s, 10s) covers points 5..9 of block 1 only.
	pts = pts[:0]
	if err := s.EachPoint(keyA, 5*time.Second, 10*time.Second, func(p storage.Point) { pts = append(pts, p) }); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].T != 5*time.Second {
		t.Fatalf("windowed points = %+v", pts)
	}

	var gaps []time.Duration
	if err := s.EachGap(keyA, 0, 0, func(g time.Duration) { gaps = append(gaps, g) }); err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 || gaps[0] != 7*time.Second || gaps[1] != 9*time.Second {
		t.Fatalf("gaps = %v", gaps)
	}

	var bks []storage.Bucket
	err = s.EachClosedBucket(keyA, 0, time.Second, 500*time.Millisecond, 0, func(b storage.Bucket) { bks = append(bks, b) })
	if err != nil {
		t.Fatal(err)
	}
	// Bucket [0,1s) overlaps a window starting at 0.5s; both buckets match.
	if len(bks) != 2 {
		t.Fatalf("EachClosedBucket streamed %d buckets, want 2", len(bks))
	}
}

func TestEmptyAppendIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(nil); err != nil {
		t.Fatal(err)
	}
	// A snapshot with only a tail update and no sealed data writes nothing.
	sn := storage.SeriesSnapshot{Key: keyA, Unit: "W"}
	sn.Levels[0].Tail = &storage.Bucket{Start: 0, Count: 1}
	if err := s.Append([]storage.SeriesSnapshot{sn}); err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != 0 {
		t.Fatalf("empty append produced %d blocks", s.NumBlocks())
	}
}

func TestOpenRemovesStrayTmp(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "b-00000009.blk.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray tmp file survived Open")
	}
}

func TestOpenRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.SeriesSnapshot{snapshotA(0, 10, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, blockName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-footerSz-3] ^= 0xff // inside the index region
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a block with a corrupt index")
	}
}

func TestSequenceResumesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.SeriesSnapshot{snapshotA(0, 5, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]storage.SeriesSnapshot{snapshotA(5, 5, 5*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, blockName(2))); err != nil {
		t.Fatalf("second block not at seq 2: %v", err)
	}
}
