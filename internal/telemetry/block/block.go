// Package block is the sealed tier of the telemetry storage engine:
// immutable on-disk files of compressed chunks, produced by compacting the
// head's unpersisted tail (a storage.SeriesSnapshot per series).
//
// A block file holds, per series: the raw points as a Gorilla chunk
// (delta-of-delta timestamps, XOR values), the gap markers as a varint
// chunk, and each rollup level's sealed buckets plus a snapshot of the
// open tail bucket. Every chunk is labelled with the absolute index range
// it covers in its series' stream, which is what lets the query layer
// stitch blocks and the in-memory head together with no overlap and no
// holes, and lets WAL replay skip records a block already holds.
//
// Files are written once — temp file, fsync, atomic rename — and never
// modified; readers keep them open and serve chunk reads by offset. The
// Store is the directory-level view: every block file in sequence order
// plus a per-series aggregate (persisted counts, newest instants, rollup
// tails) that recovery seeds the head from.
package block

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"envmon/internal/telemetry/storage"
)

const (
	magic    = "ENVB"
	trailer  = "BKNE"
	version  = 1
	numLvl   = storage.NumRollupLevels
	footerSz = 4 + 4 + 8 + 4 // index crc + index len + index off + trailer
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Agg is the per-series aggregate across every block in a store: how much
// of the series is persisted and the state recovery re-seeds the head
// with.
type Agg struct {
	Unit string
	// Points/Gaps are the persisted counts: block chunks cover absolute
	// indexes [0, Points) and [0, Gaps).
	Points uint64
	Gaps   uint64
	// Buckets counts the persisted sealed buckets per rollup level.
	Buckets [numLvl]uint64
	// Tails holds each level's open-bucket snapshot from the newest block
	// containing the series (nil when the level had no buckets).
	Tails [numLvl]*storage.Bucket
	// MinT is the oldest persisted point instant (valid when Points > 0).
	MinT time.Duration
	// LastT / LastGapT are the newest persisted instants.
	LastT    time.Duration
	LastGapT time.Duration
}

type levelEntry struct {
	startBucket uint64
	numClosed   uint64
	off, length uint64
	tail        *storage.Bucket
}

type seriesEntry struct {
	key        storage.SeriesKey
	unit       string
	startPoint uint64
	numPoints  uint64
	minT, maxT time.Duration
	lastGapT   time.Duration
	startGap   uint64
	numGaps    uint64
	ptOff      uint64
	ptLen      uint64
	gapOff     uint64
	gapLen     uint64
	levels     [numLvl]levelEntry
}

type file struct {
	f       *os.File
	seq     uint64
	size    int64
	entries map[storage.SeriesKey]*seriesEntry
}

// Store is the read view over a block directory plus the writer that
// appends new blocks. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	dir     string
	files   []*file
	agg     map[storage.SeriesKey]*Agg
	nextSeq uint64
	bytes   int64
}

// Open scans dir (created if missing) and opens every block file in
// sequence order. Stray temporary files from an interrupted write are
// removed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	s := &Store{dir: dir, agg: map[storage.SeriesKey]*Agg{}, nextSeq: 1}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "b-") || !strings.HasSuffix(name, ".blk") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "b-"), ".blk"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		bf, err := openFile(filepath.Join(dir, blockName(seq)), seq)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.publish(bf)
	}
	return s, nil
}

func blockName(seq uint64) string { return fmt.Sprintf("b-%08d.blk", seq) }

// publish adds an opened file to the store view and folds it into the
// per-series aggregates. Caller holds the write lock (or owns s solely).
func (s *Store) publish(bf *file) {
	s.files = append(s.files, bf)
	s.bytes += bf.size
	if bf.seq >= s.nextSeq {
		s.nextSeq = bf.seq + 1
	}
	for key, e := range bf.entries {
		a := s.agg[key]
		if a == nil {
			a = &Agg{}
			s.agg[key] = a
		}
		a.Unit = e.unit
		if e.numPoints > 0 {
			if a.Points == 0 {
				a.MinT = e.minT // files fold in seq order; the first is oldest
			}
			if end := e.startPoint + e.numPoints; end > a.Points {
				a.Points = end
				a.LastT = e.maxT
			}
		}
		if end := e.startGap + e.numGaps; end > a.Gaps {
			a.Gaps = end
			a.LastGapT = e.lastGapT
		}
		for l := 0; l < numLvl; l++ {
			le := &e.levels[l]
			if end := le.startBucket + le.numClosed; end > a.Buckets[l] {
				a.Buckets[l] = end
			}
			if le.tail != nil {
				a.Tails[l] = le.tail
			}
		}
	}
}

// Append writes one block holding the snapshots and publishes it. Empty
// snapshots (nothing new anywhere) are a no-op.
func (s *Store) Append(snaps []storage.SeriesSnapshot) error {
	nonEmpty := snaps[:0:0]
	for _, sn := range snaps {
		if len(sn.Points) > 0 || len(sn.Gaps) > 0 || anyClosed(sn) {
			nonEmpty = append(nonEmpty, sn)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return storage.KeyLess(nonEmpty[i].Key, nonEmpty[j].Key) })

	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	path := filepath.Join(s.dir, blockName(seq))
	if err := writeFile(path, nonEmpty); err != nil {
		return err
	}
	bf, err := openFile(path, seq)
	if err != nil {
		return err
	}
	s.publish(bf)
	return nil
}

func anyClosed(sn storage.SeriesSnapshot) bool {
	for _, lv := range sn.Levels {
		if len(lv.Closed) > 0 {
			return true
		}
	}
	return false
}

func writeFile(path string, snaps []storage.SeriesSnapshot) error {
	buf := make([]byte, 0, 64<<10)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)

	type chunkPos struct{ off, length uint64 }
	ptPos := make([]chunkPos, len(snaps))
	gapPos := make([]chunkPos, len(snaps))
	lvlPos := make([][numLvl]chunkPos, len(snaps))
	for i, sn := range snaps {
		off := uint64(len(buf))
		buf = storage.EncodePoints(buf, sn.Points)
		ptPos[i] = chunkPos{off, uint64(len(buf)) - off}
		off = uint64(len(buf))
		buf = storage.EncodeGaps(buf, sn.Gaps)
		gapPos[i] = chunkPos{off, uint64(len(buf)) - off}
		for l, lv := range sn.Levels {
			off = uint64(len(buf))
			buf = storage.EncodeBuckets(buf, lv.Closed)
			lvlPos[i][l] = chunkPos{off, uint64(len(buf)) - off}
		}
	}

	indexOff := uint64(len(buf))
	idx := make([]byte, 0, 4<<10)
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(snaps)))
	for i, sn := range snaps {
		idx = appendString(idx, sn.Key.Node)
		idx = appendString(idx, sn.Key.Backend)
		idx = appendString(idx, sn.Key.Domain)
		idx = appendString(idx, sn.Unit)
		idx = binary.AppendUvarint(idx, sn.StartPoint)
		idx = binary.AppendUvarint(idx, uint64(len(sn.Points)))
		var minT, maxT time.Duration
		if len(sn.Points) > 0 {
			minT, maxT = sn.Points[0].T, sn.Points[len(sn.Points)-1].T
		}
		idx = binary.AppendVarint(idx, int64(minT))
		idx = binary.AppendVarint(idx, int64(maxT))
		idx = binary.AppendVarint(idx, int64(sn.LastGapT))
		idx = binary.AppendUvarint(idx, sn.StartGap)
		idx = binary.AppendUvarint(idx, uint64(len(sn.Gaps)))
		idx = binary.AppendUvarint(idx, ptPos[i].off)
		idx = binary.AppendUvarint(idx, ptPos[i].length)
		idx = binary.AppendUvarint(idx, gapPos[i].off)
		idx = binary.AppendUvarint(idx, gapPos[i].length)
		for l, lv := range sn.Levels {
			idx = binary.AppendUvarint(idx, lv.StartBucket)
			idx = binary.AppendUvarint(idx, uint64(len(lv.Closed)))
			idx = binary.AppendUvarint(idx, lvlPos[i][l].off)
			idx = binary.AppendUvarint(idx, lvlPos[i][l].length)
			if lv.Tail != nil {
				idx = append(idx, 1)
				idx = binary.AppendVarint(idx, int64(lv.Tail.Start))
				idx = binary.AppendUvarint(idx, uint64(lv.Tail.Count))
				idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(lv.Tail.Min))
				idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(lv.Tail.Max))
				idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(lv.Tail.Sum))
				idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(lv.Tail.Last))
			} else {
				idx = append(idx, 0)
			}
		}
	}
	buf = append(buf, idx...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(idx, castagnoli))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(idx)))
	buf = binary.LittleEndian.AppendUint64(buf, indexOff)
	buf = append(buf, trailer...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("block: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("block: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("block: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("block: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("block: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func openFile(path string, seq uint64) (*file, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("block: %w", err)
	}
	size := st.Size()
	if size < int64(8+footerSz) {
		f.Close()
		return nil, fmt.Errorf("block: %s: too short", path)
	}
	footer := make([]byte, footerSz)
	if _, err := f.ReadAt(footer, size-int64(footerSz)); err != nil {
		f.Close()
		return nil, fmt.Errorf("block: %w", err)
	}
	if string(footer[16:]) != trailer {
		f.Close()
		return nil, fmt.Errorf("block: %s: bad trailer", path)
	}
	idxSum := binary.LittleEndian.Uint32(footer[:4])
	idxLen := binary.LittleEndian.Uint32(footer[4:8])
	idxOff := binary.LittleEndian.Uint64(footer[8:16])
	if idxOff+uint64(idxLen) > uint64(size) {
		f.Close()
		return nil, fmt.Errorf("block: %s: index out of range", path)
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("block: %w", err)
	}
	if crc32.Checksum(idx, castagnoli) != idxSum {
		f.Close()
		return nil, fmt.Errorf("block: %s: index checksum mismatch", path)
	}
	bf := &file{f: f, seq: seq, size: size, entries: map[storage.SeriesKey]*seriesEntry{}}
	if err := bf.parseIndex(idx); err != nil {
		f.Close()
		return nil, fmt.Errorf("block: %s: %w", path, err)
	}
	return bf, nil
}

type idxReader struct {
	p   []byte
	err error
}

func (r *idxReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		r.err = errors.New("index truncated")
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *idxReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.p)
	if n <= 0 {
		r.err = errors.New("index truncated")
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *idxReader) str() string {
	l := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.p)) < l {
		r.err = errors.New("index truncated")
		return ""
	}
	s := string(r.p[:l])
	r.p = r.p[l:]
	return s
}

func (r *idxReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.p) < 8 {
		r.err = errors.New("index truncated")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.p))
	r.p = r.p[8:]
	return v
}

func (r *idxReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.p) == 0 {
		r.err = errors.New("index truncated")
		return 0
	}
	b := r.p[0]
	r.p = r.p[1:]
	return b
}

func (bf *file) parseIndex(idx []byte) error {
	if len(idx) < 4 {
		return errors.New("index truncated")
	}
	n := binary.LittleEndian.Uint32(idx)
	r := &idxReader{p: idx[4:]}
	for i := uint32(0); i < n; i++ {
		e := &seriesEntry{}
		e.key.Node = r.str()
		e.key.Backend = r.str()
		e.key.Domain = r.str()
		e.unit = r.str()
		e.startPoint = r.uvarint()
		e.numPoints = r.uvarint()
		e.minT = time.Duration(r.varint())
		e.maxT = time.Duration(r.varint())
		e.lastGapT = time.Duration(r.varint())
		e.startGap = r.uvarint()
		e.numGaps = r.uvarint()
		e.ptOff = r.uvarint()
		e.ptLen = r.uvarint()
		e.gapOff = r.uvarint()
		e.gapLen = r.uvarint()
		for l := 0; l < numLvl; l++ {
			le := &e.levels[l]
			le.startBucket = r.uvarint()
			le.numClosed = r.uvarint()
			le.off = r.uvarint()
			le.length = r.uvarint()
			if r.byte() == 1 {
				tail := &storage.Bucket{
					Start: time.Duration(r.varint()),
					Count: int(r.uvarint()),
				}
				tail.Min = r.f64()
				tail.Max = r.f64()
				tail.Sum = r.f64()
				tail.Last = r.f64()
				le.tail = tail
			}
		}
		if r.err != nil {
			return r.err
		}
		bf.entries[e.key] = e
	}
	return nil
}

func (bf *file) chunk(off, length uint64) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := bf.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("block: reading chunk: %w", err)
	}
	return buf, nil
}

// Agg reports the series' cross-block aggregate.
func (s *Store) Agg(key storage.SeriesKey) (Agg, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.agg[key]
	if !ok {
		return Agg{}, false
	}
	return *a, true
}

// Each calls fn for every series with persisted data, in key order.
func (s *Store) Each(fn func(key storage.SeriesKey, a Agg)) {
	s.mu.RLock()
	keys := make([]storage.SeriesKey, 0, len(s.agg))
	for k := range s.agg {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return storage.KeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		if a, ok := s.Agg(k); ok {
			fn(k, a)
		}
	}
}

// EachPoint streams the series' persisted points inside [from, to) — to
// <= 0 means unbounded — in ingest order across blocks.
func (s *Store) EachPoint(key storage.SeriesKey, from, to time.Duration, fn func(storage.Point)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scratch []storage.Point
	for _, bf := range s.files {
		e, ok := bf.entries[key]
		if !ok || e.numPoints == 0 {
			continue
		}
		if e.maxT < from || (to > 0 && e.minT >= to) {
			continue
		}
		chunk, err := bf.chunk(e.ptOff, e.ptLen)
		if err != nil {
			return err
		}
		scratch, err = storage.DecodePoints(scratch[:0], chunk, int(e.numPoints))
		if err != nil {
			return err
		}
		for _, p := range scratch {
			if p.T < from || (to > 0 && p.T >= to) {
				continue
			}
			fn(p)
		}
	}
	return nil
}

// EachClosedBucket streams the series' persisted sealed buckets at the
// level, in order, for every bucket overlapping the window: buckets whose
// [Start, Start+period) intersects [from, to).
func (s *Store) EachClosedBucket(key storage.SeriesKey, level int, period, from, to time.Duration, fn func(storage.Bucket)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scratch []storage.Bucket
	for _, bf := range s.files {
		e, ok := bf.entries[key]
		if !ok {
			continue
		}
		le := &e.levels[level]
		if le.numClosed == 0 {
			continue
		}
		chunk, err := bf.chunk(le.off, le.length)
		if err != nil {
			return err
		}
		scratch, err = storage.DecodeBuckets(scratch[:0], chunk, int(le.numClosed))
		if err != nil {
			return err
		}
		for _, b := range scratch {
			if b.Start+period <= from || (to > 0 && b.Start >= to) {
				continue
			}
			fn(b)
		}
	}
	return nil
}

// EachGap streams the series' persisted gap markers inside [from, to) in
// order.
func (s *Store) EachGap(key storage.SeriesKey, from, to time.Duration, fn func(time.Duration)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scratch []time.Duration
	for _, bf := range s.files {
		e, ok := bf.entries[key]
		if !ok || e.numGaps == 0 {
			continue
		}
		chunk, err := bf.chunk(e.gapOff, e.gapLen)
		if err != nil {
			return err
		}
		scratch, err = storage.DecodeGaps(scratch[:0], chunk, int(e.numGaps))
		if err != nil {
			return err
		}
		for _, g := range scratch {
			if g < from || (to > 0 && g >= to) {
				continue
			}
			fn(g)
		}
	}
	return nil
}

// NumBlocks reports how many block files the store serves.
func (s *Store) NumBlocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// Bytes reports the total size of every block file.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// NumSeries reports how many distinct series have persisted data.
func (s *Store) NumSeries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.agg)
}

// Close closes every block file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, bf := range s.files {
		if err := bf.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}
