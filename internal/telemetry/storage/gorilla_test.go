package storage

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func roundTripPoints(t *testing.T, pts []Point) []byte {
	t.Helper()
	chunk := EncodePoints(nil, pts)
	got, err := DecodePoints(nil, chunk, len(pts))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].T != pts[i].T || math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], pts[i])
		}
	}
	return chunk
}

func TestPointsRoundTripRegular(t *testing.T) {
	// A steady poller: constant interval, slowly drifting value — the case
	// Gorilla is built for. Expect heavy compression.
	pts := make([]Point, 2048)
	v := 212.5
	for i := range pts {
		v += float64(i%7)*0.25 - 0.75
		pts[i] = Point{T: time.Duration(i) * 50 * time.Millisecond, V: v}
	}
	chunk := roundTripPoints(t, pts)
	raw := len(pts) * 16
	if len(chunk)*4 > raw {
		t.Errorf("regular stream compressed to %d bytes of %d raw (want at least 4x)", len(chunk), raw)
	}
}

func TestPointsRoundTripAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 1000)
	tm := int64(0)
	for i := range pts {
		// Irregular timing incl. repeated instants, and hostile values:
		// NaN payloads, infinities, denormals, sign flips.
		if rng.Intn(4) != 0 {
			tm += rng.Int63n(5e9)
		}
		var v float64
		switch rng.Intn(6) {
		case 0:
			v = math.NaN()
		case 1:
			v = math.Inf(1 - 2*rng.Intn(2))
		case 2:
			v = math.Float64frombits(rng.Uint64())
		case 3:
			v = 0
		default:
			v = rng.NormFloat64() * 1e6
		}
		pts[i] = Point{T: time.Duration(tm), V: v}
	}
	roundTripPoints(t, pts)
}

func TestPointsRoundTripTiny(t *testing.T) {
	roundTripPoints(t, nil)
	roundTripPoints(t, []Point{{T: 5 * time.Second, V: -12.75}})
	roundTripPoints(t, []Point{{T: 0, V: 0}, {T: 0, V: 0}})
	// Huge delta-of-delta exercising the 64-bit bucket.
	roundTripPoints(t, []Point{{T: 0, V: 1}, {T: 1, V: 2}, {T: 1<<62 - 1, V: 3}})
}

func TestPointsDecodeTruncated(t *testing.T) {
	pts := []Point{{T: 0, V: 1}, {T: time.Second, V: 2}, {T: 2 * time.Second, V: 3}}
	chunk := EncodePoints(nil, pts)
	if _, err := DecodePoints(nil, chunk[:len(chunk)-1], len(pts)); err == nil {
		// Truncating one byte may still leave enough padding bits; cutting
		// harder must fail.
		if _, err := DecodePoints(nil, chunk[:4], len(pts)); err == nil {
			t.Fatal("decode of a truncated chunk succeeded")
		}
	}
}

func TestBucketsRoundTrip(t *testing.T) {
	var bs []Bucket
	for i := 0; i < 500; i++ {
		bs = append(bs, Bucket{
			Start: time.Duration(i) * time.Second,
			Count: i%11 + 1,
			Min:   -float64(i) * 0.5,
			Max:   float64(i) * 1.5,
			Sum:   float64(i) * 3.25,
			Last:  float64(i),
		})
	}
	chunk := EncodeBuckets(nil, bs)
	got, err := DecodeBuckets(nil, chunk, len(bs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bs {
		if got[i] != bs[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], bs[i])
		}
	}
	if _, err := DecodeBuckets(nil, chunk[:10], len(bs)); err == nil {
		t.Fatal("decode of a truncated bucket chunk succeeded")
	}
}

func TestGapsRoundTrip(t *testing.T) {
	var gaps []time.Duration
	tm := time.Duration(0)
	for i := 0; i < 300; i++ {
		if i%5 != 0 {
			tm += time.Duration(i) * time.Millisecond
		}
		gaps = append(gaps, tm)
	}
	chunk := EncodeGaps(nil, gaps)
	got, err := DecodeGaps(nil, chunk, len(gaps))
	if err != nil {
		t.Fatal(err)
	}
	for i := range gaps {
		if got[i] != gaps[i] {
			t.Fatalf("gap %d = %v, want %v", i, got[i], gaps[i])
		}
	}
	if _, err := DecodeGaps(nil, chunk[:1], len(gaps)); err == nil {
		t.Fatal("decode of a truncated gap chunk succeeded")
	}
}

func TestKeyHashDistinguishesFieldBoundaries(t *testing.T) {
	a := SeriesKey{Node: "ab", Backend: "c", Domain: "d"}
	b := SeriesKey{Node: "a", Backend: "bc", Domain: "d"}
	if a.Hash() == b.Hash() {
		t.Fatal("field boundaries not separated in hash")
	}
}
