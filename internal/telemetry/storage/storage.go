// Package storage holds the shared vocabulary of the layered telemetry
// storage engine: the primitive types every tier speaks (SeriesKey, Point,
// Bucket), the on-disk codecs (Gorilla-style compressed chunks), and the
// SeriesSnapshot handoff that moves sealed head data into immutable
// blocks.
//
// The engine is layered the way production time-series databases are:
//
//	ingest ──▶ WAL (internal/telemetry/wal)   durable journal, per shard
//	       └─▶ Head (internal/telemetry)      mutable in-memory rings
//	                 │  compaction (sealed SeriesSnapshot)
//	                 ▼
//	            Block (internal/telemetry/block)  immutable compressed files
//
// The head is the write tier: bounded preallocated rings plus the
// incremental rollup ladder. A block is a read tier: an immutable file of
// compressed chunks covering a contiguous per-series index range. The two
// meet at a *count seam*: every series numbers its samples 0,1,2,… from
// first ingest, blocks record which index range they hold, and the head
// tracks how many leading samples are persisted — so the query layer can
// stitch disk and memory back into exactly the stream that was ingested,
// with no overlap and no holes, at any shard count.
//
// This package has no dependencies beyond the standard library, so the
// wal, block, and telemetry packages can all import it without cycles.
package storage

import "time"

// SeriesKey identifies one stored series: a measurement domain of one
// backend mechanism on one node — e.g. {Node: "c401-003", Backend: "MSR",
// Domain: "Total Power"}.
type SeriesKey struct {
	Node    string
	Backend string
	Domain  string
}

// Hash folds the key through FNV-1a with a terminator byte per field, so
// {"ab","c"} and {"a","bc"} shard differently. Computed in place: no
// string concatenation, no allocation.
func (k SeriesKey) Hash() uint64 {
	h := uint64(14695981039346656037)
	h = fnvField(h, k.Node)
	h = fnvField(h, k.Backend)
	h = fnvField(h, k.Domain)
	return h
}

func fnvField(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= 0xff
	h *= 1099511628211
	return h
}

// KeyLess orders keys by (Node, Backend, Domain) — the deterministic
// ordering every listing and block index uses.
func KeyLess(a, b SeriesKey) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Backend != b.Backend {
		return a.Backend < b.Backend
	}
	return a.Domain < b.Domain
}

// Point is one raw sample.
type Point struct {
	T time.Duration
	V float64
}

// Bucket is one rollup bucket: the incremental summary of every sample
// whose time falls in [Start, Start+period).
type Bucket struct {
	Start time.Duration
	Count int
	Min   float64
	Max   float64
	Sum   float64
	Last  float64
}

// Mean reports the bucket's arithmetic mean (0 for an empty bucket).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// RollupPeriods holds the ladder's bucket widths, coarsening left to
// right. Index-aligned with LevelSnapshot slices and the head's rollup
// rings.
var RollupPeriods = [...]time.Duration{time.Second, 10 * time.Second, time.Minute}

// NumRollupLevels is the depth of the rollup ladder.
const NumRollupLevels = len(RollupPeriods)

// LevelSnapshot is one rollup level's sealed state inside a
// SeriesSnapshot: the closed buckets being persisted, their starting
// absolute bucket index, and the open tail bucket's state at the seal
// point. The tail is a snapshot, not a sealed bucket: later samples keep
// mutating the head's copy, and recovery re-seeds the ladder from the
// newest persisted tail so incremental accumulation continues exactly
// where it left off.
type LevelSnapshot struct {
	// StartBucket is the absolute index (0-based, counting every bucket
	// the series ever opened at this level) of Closed[0].
	StartBucket uint64
	// Closed holds the sealed buckets: every bucket except the open tail.
	Closed []Bucket
	// Tail is the open bucket's state when the snapshot was taken; nil
	// when the level has no buckets yet.
	Tail *Bucket
}

// SeriesSnapshot is the handoff from the head to a block writer: one
// series' unpersisted tail, sealed. Points[0] has absolute sample index
// StartPoint; Gaps[0] has absolute gap index StartGap. The block writer
// persists the slices verbatim, so a snapshot is exactly the data whose
// durability moves from the WAL to a block.
type SeriesSnapshot struct {
	Key  SeriesKey
	Unit string

	// StartPoint is the absolute index of Points[0] in the series' ingest
	// stream (== the number of points already persisted by older blocks).
	StartPoint uint64
	Points     []Point

	// StartGap is the absolute index of Gaps[0] in the series' gap stream.
	StartGap uint64
	Gaps     []time.Duration

	Levels [NumRollupLevels]LevelSnapshot

	// LastT / LastGapT are the series' newest sample / gap instants at the
	// seal point, for head reconstruction on recovery.
	LastT    time.Duration
	LastGapT time.Duration
}
