package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// This file holds the chunk codecs of the block layer.
//
// Raw points use the Gorilla encoding (Pelkonen et al., "Gorilla: a fast,
// scalable, in-memory time series database", VLDB 2015), adapted to
// nanosecond timestamps: delta-of-delta timestamps in widening bit
// buckets, and XOR-compressed values that reuse the previous sample's
// meaningful-bit window when it still fits. A steady poller (constant
// interval, slowly moving value) costs ~1–2 bits per timestamp and a few
// bits per value — against 16 bytes per raw point.
//
// Rollup buckets and gap markers are already 1–2 orders of magnitude
// sparser than raw points, so they use a plain byte-aligned varint
// encoding: delta timestamps, raw float64 bits.

// EncodePoints appends the Gorilla-compressed chunk for pts to dst and
// returns the extended slice. Points must be in ingest order
// (non-decreasing T). The chunk is self-contained; DecodePoints needs
// only the byte slice and the point count.
func EncodePoints(dst []byte, pts []Point) []byte {
	if len(pts) == 0 {
		return dst
	}
	var w bitWriter
	w.buf = dst[len(dst):len(dst):cap(dst)] // reuse dst's tail capacity if any
	// First point: raw 64-bit timestamp and value.
	w.writeBits(uint64(pts[0].T), 64)
	w.writeBits(math.Float64bits(pts[0].V), 64)
	prevT := int64(pts[0].T)
	prevDelta := int64(0)
	prevV := math.Float64bits(pts[0].V)
	prevLead, prevSig := uint(0), uint(0) // valid when prevSig > 0
	for _, p := range pts[1:] {
		t := int64(p.T)
		delta := t - prevT
		dod := delta - prevDelta
		switch {
		case dod == 0:
			w.writeBit(0)
		case dod >= -(1<<15) && dod < 1<<15:
			w.writeBits(0b10, 2)
			w.writeBits(uint64(dod)&(1<<16-1), 16)
		case dod >= -(1<<31) && dod < 1<<31:
			w.writeBits(0b110, 3)
			w.writeBits(uint64(dod)&(1<<32-1), 32)
		default:
			w.writeBits(0b111, 3)
			w.writeBits(uint64(dod), 64)
		}
		prevT, prevDelta = t, delta

		v := math.Float64bits(p.V)
		xor := v ^ prevV
		prevV = v
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31 // 5-bit field; extra leading zeros ride in the payload
		}
		trail := uint(bits.TrailingZeros64(xor))
		sig := 64 - lead - trail
		if prevSig > 0 && lead >= prevLead && lead+sig <= prevLead+prevSig {
			// The previous window still covers every meaningful bit.
			w.writeBit(0)
			w.writeBits(xor>>(64-prevLead-prevSig), prevSig)
			continue
		}
		w.writeBit(1)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig-1), 6) // sig in 1..64 stored as 0..63
		w.writeBits(xor>>trail, sig)
		prevLead, prevSig = lead, sig
	}
	return append(dst, w.bytes()...)
}

// DecodePoints appends the n points of a chunk produced by EncodePoints
// to dst and returns the extended slice.
func DecodePoints(dst []Point, chunk []byte, n int) ([]Point, error) {
	if n == 0 {
		return dst, nil
	}
	r := newBitReader(chunk)
	t0, err := r.readBits(64)
	if err != nil {
		return dst, err
	}
	v0, err := r.readBits(64)
	if err != nil {
		return dst, err
	}
	prevT := int64(t0)
	prevDelta := int64(0)
	prevV := v0
	prevLead, prevSig := uint(0), uint(0)
	dst = append(dst, Point{T: time.Duration(prevT), V: math.Float64frombits(prevV)})
	for i := 1; i < n; i++ {
		// Timestamp: read the delta-of-delta bucket selector.
		var dod int64
		b, err := r.readBit()
		if err != nil {
			return dst, err
		}
		if b == 1 {
			b2, err := r.readBit()
			if err != nil {
				return dst, err
			}
			if b2 == 0 {
				u, err := r.readBits(16)
				if err != nil {
					return dst, err
				}
				dod = int64(int16(u))
			} else {
				b3, err := r.readBit()
				if err != nil {
					return dst, err
				}
				width := uint(64)
				if b3 == 0 {
					width = 32
				}
				u, err := r.readBits(width)
				if err != nil {
					return dst, err
				}
				if width == 32 {
					dod = int64(int32(u))
				} else {
					dod = int64(u)
				}
			}
		}
		prevDelta += dod
		prevT += prevDelta

		// Value: XOR chain.
		b, err = r.readBit()
		if err != nil {
			return dst, err
		}
		if b == 1 {
			ctrl, err := r.readBit()
			if err != nil {
				return dst, err
			}
			if ctrl == 1 {
				lead, err := r.readBits(5)
				if err != nil {
					return dst, err
				}
				sig, err := r.readBits(6)
				if err != nil {
					return dst, err
				}
				prevLead, prevSig = uint(lead), uint(sig)+1
			} else if prevSig == 0 {
				return dst, fmt.Errorf("storage: point chunk reuses an unset XOR window")
			}
			mant, err := r.readBits(prevSig)
			if err != nil {
				return dst, err
			}
			prevV ^= mant << (64 - prevLead - prevSig)
		}
		dst = append(dst, Point{T: time.Duration(prevT), V: math.Float64frombits(prevV)})
	}
	return dst, nil
}

// EncodeBuckets appends the chunk for a run of sealed rollup buckets:
// delta-encoded varint starts, varint counts, raw float64 statistics.
func EncodeBuckets(dst []byte, bs []Bucket) []byte {
	prev := int64(0)
	for i, b := range bs {
		d := int64(b.Start) - prev
		if i == 0 {
			d = int64(b.Start)
		}
		prev = int64(b.Start)
		dst = binary.AppendVarint(dst, d)
		dst = binary.AppendUvarint(dst, uint64(b.Count))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Min))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Max))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Sum))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Last))
	}
	return dst
}

// DecodeBuckets appends the n buckets of an EncodeBuckets chunk to dst.
func DecodeBuckets(dst []Bucket, chunk []byte, n int) ([]Bucket, error) {
	off := 0
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(chunk[off:])
		if sz <= 0 {
			return dst, fmt.Errorf("storage: bucket chunk truncated at bucket %d", i)
		}
		off += sz
		prev += d
		cnt, sz := binary.Uvarint(chunk[off:])
		if sz <= 0 {
			return dst, fmt.Errorf("storage: bucket chunk truncated at bucket %d", i)
		}
		off += sz
		if off+32 > len(chunk) {
			return dst, fmt.Errorf("storage: bucket chunk truncated at bucket %d", i)
		}
		b := Bucket{
			Start: time.Duration(prev),
			Count: int(cnt),
			Min:   math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:])),
			Max:   math.Float64frombits(binary.LittleEndian.Uint64(chunk[off+8:])),
			Sum:   math.Float64frombits(binary.LittleEndian.Uint64(chunk[off+16:])),
			Last:  math.Float64frombits(binary.LittleEndian.Uint64(chunk[off+24:])),
		}
		off += 32
		dst = append(dst, b)
	}
	return dst, nil
}

// EncodeGaps appends the chunk for a run of gap markers: the first
// instant as a signed varint, then unsigned varint deltas (gap times are
// non-decreasing per series).
func EncodeGaps(dst []byte, gaps []time.Duration) []byte {
	prev := int64(0)
	for i, g := range gaps {
		if i == 0 {
			dst = binary.AppendVarint(dst, int64(g))
		} else {
			dst = binary.AppendUvarint(dst, uint64(int64(g)-prev))
		}
		prev = int64(g)
	}
	return dst
}

// DecodeGaps appends the n gap markers of an EncodeGaps chunk to dst.
func DecodeGaps(dst []time.Duration, chunk []byte, n int) ([]time.Duration, error) {
	if n == 0 {
		return dst, nil
	}
	first, sz := binary.Varint(chunk)
	if sz <= 0 {
		return dst, fmt.Errorf("storage: gap chunk truncated at gap 0")
	}
	off := sz
	prev := first
	dst = append(dst, time.Duration(first))
	for i := 1; i < n; i++ {
		d, sz := binary.Uvarint(chunk[off:])
		if sz <= 0 {
			return dst, fmt.Errorf("storage: gap chunk truncated at gap %d", i)
		}
		off += sz
		prev += int64(d)
		dst = append(dst, time.Duration(prev))
	}
	return dst, nil
}
