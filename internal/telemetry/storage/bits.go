package storage

import "fmt"

// bitWriter packs bits MSB-first into a byte slice. The zero value is
// ready to use; Bytes returns the packed buffer with the final partial
// byte zero-padded.
type bitWriter struct {
	buf   []byte
	nbits uint // bits used in the final byte (0..7; 0 means byte-aligned)
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.nbits == 0 {
		w.buf = append(w.buf, 0)
	}
	if bit != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbits)
	}
	w.nbits = (w.nbits + 1) & 7
}

// writeBits writes the low n bits of v, most significant first. n <= 64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := n; i > 0; i-- {
		w.writeBit((v >> (i - 1)) & 1)
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos uint // absolute bit position
}

func newBitReader(buf []byte) bitReader { return bitReader{buf: buf} }

func (r *bitReader) readBit() (uint64, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= uint(len(r.buf)) {
		return 0, fmt.Errorf("storage: bitstream truncated at bit %d", r.pos)
	}
	bit := uint64(r.buf[byteIdx]>>(7-(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}
