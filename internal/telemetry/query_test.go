package telemetry

import (
	"reflect"
	"testing"
	"time"
)

// populate fills a store with a deterministic grid: nodes n00..n(N-1),
// two backends per node, samples every 250 ms over span. Node i's power
// level is 100 + 10*i watts with a small deterministic wiggle.
func populate(t *testing.T, st *Store, nodes int, span time.Duration) {
	t.Helper()
	for at := time.Duration(0); at < span; at += 250 * time.Millisecond {
		for i := 0; i < nodes; i++ {
			base := 100 + 10*float64(i)
			wiggle := float64((int(at/(250*time.Millisecond))+i)%5) - 2
			k1 := SeriesKey{Node: nodeName(i), Backend: "MSR", Domain: "Total Power"}
			k2 := SeriesKey{Node: nodeName(i), Backend: "MICRAS daemon", Domain: "Total Power"}
			mustIngest(t, st, k1, at, base+wiggle)
			mustIngest(t, st, k2, at, base/2+wiggle)
			mustIngest(t, st, SeriesKey{Node: nodeName(i), Backend: "MSR", Domain: "Die Temperature"}, at, 50+wiggle)
		}
	}
}

func nodeName(i int) string {
	return string([]byte{'n', byte('0' + i/10), byte('0' + i%10)})
}

func TestQueryFiltersAndWindow(t *testing.T) {
	st := New(Options{Shards: 4})
	populate(t, st, 4, 10*time.Second)

	// Wildcard everything: 3 series per node.
	if frames := st.Query(Query{}); len(frames) != 12 {
		t.Fatalf("all frames = %d, want 12", len(frames))
	}
	// One node.
	if frames := st.Query(Query{Node: "n01"}); len(frames) != 3 {
		t.Errorf("node frames = %d, want 3", len(frames))
	}
	// One backend across nodes.
	if frames := st.Query(Query{Backend: "MICRAS daemon"}); len(frames) != 4 {
		t.Errorf("backend frames = %d, want 4", len(frames))
	}
	// Domain filter.
	if frames := st.Query(Query{Domain: "Die Temperature"}); len(frames) != 4 {
		t.Errorf("domain frames = %d, want 4", len(frames))
	}
	// Half-open raw window: [1s, 2s) holds 4 of the 250 ms samples.
	frames := st.Query(Query{Node: "n00", Backend: "MSR", Domain: "Total Power",
		From: time.Second, To: 2 * time.Second})
	if len(frames) != 1 || len(frames[0].Points) != 4 {
		t.Fatalf("windowed = %+v", frames)
	}
	if frames[0].Points[0].T != time.Second || frames[0].Points[3].T != 1750*time.Millisecond {
		t.Errorf("window bounds wrong: %+v", frames[0].Points)
	}
	// Frames arrive sorted by key.
	all := st.Query(Query{})
	for i := 1; i < len(all); i++ {
		if !lessKey(all[i-1].Key, all[i].Key) {
			t.Fatalf("frames not sorted at %d: %+v then %+v", i, all[i-1].Key, all[i].Key)
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	st := New(Options{})
	k := key("n0")
	for i, v := range []float64{4, 7, 1, 9, 5} {
		mustIngest(t, st, k, time.Duration(i)*time.Second, v)
	}
	cases := []struct {
		agg  Aggregate
		want float64
	}{{AggMean, 5.2}, {AggMin, 1}, {AggMax, 9}, {AggLast, 5}}
	for _, c := range cases {
		frames := st.Query(Query{Resolution: Raw, Aggregate: c.agg})
		f := frames[0]
		if !f.ReducedOK || f.Reduced != c.want {
			t.Errorf("%v: Reduced = (%v, %v), want (%v, true)", c.agg, f.Reduced, f.ReducedOK, c.want)
		}
	}
	// AggNone computes nothing; empty window reduces to nothing.
	if f := st.Query(Query{})[0]; f.ReducedOK {
		t.Error("AggNone produced a reduction")
	}
	if f := st.Query(Query{From: time.Hour, Aggregate: AggMean})[0]; f.ReducedOK {
		t.Error("empty window produced a reduction")
	}
	// Rollup-resolution mean is sample-weighted across buckets.
	frames := st.Query(Query{Resolution: Res10s, Aggregate: AggMean})
	if f := frames[0]; !f.ReducedOK || f.Reduced != 5.2 {
		t.Errorf("rollup mean = %v, want 5.2", f.Reduced)
	}
}

func TestTopKRanking(t *testing.T) {
	st := New(Options{Shards: 4})
	populate(t, st, 4, 10*time.Second)

	ranked, total := st.TopK(2, "", 0, 0, Raw)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// Node i draws base + base/2 with base = 100+10i: hottest node last.
	if ranked[0].Node != "n03" || ranked[1].Node != "n02" {
		t.Errorf("order = %s, %s (want n03, n02)", ranked[0].Node, ranked[1].Node)
	}
	if ranked[0].Series != 2 {
		t.Errorf("n03 contributing series = %d, want 2 (MSR + MICRAS)", ranked[0].Series)
	}
	// Total spans all 4 nodes even though only 2 were returned.
	watts, nodes := st.TotalPower("", 0, 0, Raw)
	if watts != total || nodes != 4 {
		t.Errorf("TotalPower = (%v, %d), want (%v, 4)", watts, nodes, total)
	}
	// Temperature series must not leak into the power ranking: expected
	// mean per node is 1.5*(100+10i) + 1.5*wiggle-mean.
	if ranked[0].Watts < 150 || ranked[0].Watts > 250 {
		t.Errorf("n03 watts = %v, outside plausible power band", ranked[0].Watts)
	}
}

// TestShardCountByteIdentity is the determinism acceptance gate: the same
// ingest stream must produce identical query results — frames, rollups,
// rankings — at any shard count.
func TestShardCountByteIdentity(t *testing.T) {
	build := func(shards int) *Store {
		st := New(Options{Shards: shards, RawCapacity: 64, RollupCapacity: 32})
		populate(t, st, 7, 30*time.Second)
		return st
	}
	ref := build(1)
	for _, shards := range []int{2, 8, 64} {
		st := build(shards)
		for _, q := range []Query{
			{Resolution: Raw},
			{Resolution: Res1s, Aggregate: AggMean},
			{Resolution: Res10s, Aggregate: AggMax, From: 5 * time.Second, To: 25 * time.Second},
		} {
			want, got := ref.Query(q), st.Query(q)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("shards=%d query %+v diverged from shards=1", shards, q)
			}
		}
		wantRank, wantTotal := ref.TopK(0, "", 0, 0, Res1s)
		gotRank, gotTotal := st.TopK(0, "", 0, 0, Res1s)
		if !reflect.DeepEqual(wantRank, gotRank) || wantTotal != gotTotal {
			t.Fatalf("shards=%d TopK diverged from shards=1", shards)
		}
		if !reflect.DeepEqual(ref.Series(), st.Series()) {
			t.Fatalf("shards=%d Series() diverged from shards=1", shards)
		}
	}
}

func TestResolutionAndAggregateParsing(t *testing.T) {
	for _, r := range []Resolution{Raw, Res1s, Res10s, Res60s} {
		got, err := ParseResolution(r.String())
		if err != nil || got != r {
			t.Errorf("ParseResolution(%q) = (%v, %v)", r.String(), got, err)
		}
	}
	if _, err := ParseResolution("5m"); err == nil {
		t.Error("unknown resolution accepted")
	}
	if r, err := ParseResolution(""); err != nil || r != Raw {
		t.Error("empty resolution must default to raw")
	}
	if Res10s.Period() != 10*time.Second || Raw.Period() != 0 {
		t.Error("Period wrong")
	}
	for _, a := range []Aggregate{AggNone, AggMean, AggMin, AggMax, AggLast} {
		got, err := ParseAggregate(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAggregate(%q) = (%v, %v)", a.String(), got, err)
		}
	}
	if _, err := ParseAggregate("p99"); err == nil {
		t.Error("unknown aggregate accepted")
	}
}
