package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"
)

// crashOpts must match between the child (ingesting) and the parent
// (recovering): tiny rings and a tiny WAL budget so the kill lands in a
// stream of real compactions and rotations.
func crashOpts() Options {
	return Options{Shards: 2, RawCapacity: 64, RollupCapacity: 4, GapCapacity: 16,
		WALSegmentBytes: 64 << 10}
}

var crashKey = SeriesKey{Node: "c000-001", Backend: "MSR", Domain: "Total Power"}

// crashEvent is the deterministic workload both processes can derive:
// event i is a gap marker when i%7 == 3, a sample otherwise.
func crashEvent(i int) (t time.Duration, v float64, gap bool) {
	t = time.Duration(i) * 10 * time.Millisecond
	if i%7 == 3 {
		return t, 0, true
	}
	return t, 200 + float64(i%13)*0.25, false
}

// runCrashChild ingests the workload forever, printing each event's index
// once the store has acknowledged it. It only exits by being killed.
func runCrashChild(dir string) {
	st, err := Open(dir, crashOpts())
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	for i := 0; ; i++ {
		t, v, gap := crashEvent(i)
		if gap {
			err = st.IngestGap(crashKey, "W", t)
		} else {
			err = st.Ingest(crashKey, "W", t, v)
		}
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		// The ack goes out only after the ingest returned: everything the
		// parent reads is covered by the durability guarantee.
		fmt.Fprintln(w, i)
		w.Flush()
	}
}

// TestCrashRecoveryAfterKill kills an ingesting process with SIGKILL mid
// stream, reopens its data directory, and checks that every acknowledged
// sample and gap marker survived and that the recovered history is exactly
// the event stream an uninterrupted run would have produced.
func TestCrashRecoveryAfterKill(t *testing.T) {
	if dir := os.Getenv("TELEMETRY_CRASH_CHILD"); dir != "" {
		runCrashChild(dir) // never returns
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryAfterKill")
	cmd.Env = append(os.Environ(), "TELEMETRY_CRASH_CHILD="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read acks until the child is deep into compaction territory, then
	// kill it mid-flight — no flush, no warning.
	lastAck := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		n, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatalf("child: %s", sc.Text())
		}
		lastAck = n
		if lastAck >= 20000 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	if lastAck < 20000 {
		t.Fatalf("child died early (last ack %d)", lastAck)
	}

	st, err := Open(dir, crashOpts())
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()
	if lost := st.StorageStats().Recovery.Lost; lost != 0 {
		t.Fatalf("recovery lost %d journal records", lost)
	}

	frames := st.Query(Query{Node: crashKey.Node})
	if len(frames) != 1 {
		t.Fatalf("recovered %d series, want 1", len(frames))
	}
	f := frames[0]
	// Acks are in ingest order over one series, so the recovered state
	// must be a prefix of the event stream covering at least every acked
	// event — and each recovered point/gap must match the generator
	// exactly (never a zero standing in for "no data").
	recovered := len(f.Points) + len(f.Gaps)
	if recovered <= lastAck {
		t.Fatalf("recovered %d events, acknowledged %d", recovered, lastAck+1)
	}
	pi, gi := 0, 0
	for i := 0; i < recovered; i++ {
		et, ev, gap := crashEvent(i)
		if gap {
			if gi >= len(f.Gaps) || f.Gaps[gi] != et {
				t.Fatalf("event %d: gap marker missing or wrong (have %d gaps)", i, len(f.Gaps))
			}
			gi++
			continue
		}
		if pi >= len(f.Points) {
			t.Fatalf("event %d: sample missing", i)
		}
		if p := f.Points[pi]; p.T != et || p.Last != ev {
			t.Fatalf("event %d: recovered (%v, %v), want (%v, %v)", i, p.T, p.Last, et, ev)
		}
		pi++
	}

	// And the recovered store must answer exactly like an uninterrupted
	// run over the same prefix.
	ref := New(Options{Shards: 1, RawCapacity: 1 << 20, RollupCapacity: 1 << 16, GapCapacity: 1 << 16})
	for i := 0; i < recovered; i++ {
		et, ev, gap := crashEvent(i)
		if gap {
			err = ref.IngestGap(crashKey, "W", et)
		} else {
			err = ref.Ingest(crashKey, "W", et, ev)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range []Resolution{Raw, Res1s, Res10s, Res60s} {
		got := st.Query(Query{Resolution: res, Aggregate: AggMean})
		want := ref.Query(Query{Resolution: res, Aggregate: AggMean})
		if len(got) != 1 || len(want) != 1 {
			t.Fatalf("res %v: frame counts %d/%d", res, len(got), len(want))
		}
		if fmt.Sprintf("%+v", got[0]) != fmt.Sprintf("%+v", want[0]) {
			t.Fatalf("res %v: recovered frame diverges from uninterrupted run", res)
		}
	}
}
