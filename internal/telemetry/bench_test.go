package telemetry

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// benchKeys builds n distinct series keys spread across nodes and the two
// power backends, mirroring the shape of a real cluster job.
func benchKeys(n int) []SeriesKey {
	keys := make([]SeriesKey, n)
	backends := []string{"MSR", "MICRAS daemon"}
	for i := range keys {
		keys[i] = SeriesKey{
			Node:    fmt.Sprintf("c%03d-%03d", i/32, i%32),
			Backend: backends[i%len(backends)],
			Domain:  "Total Power",
		}
	}
	return keys
}

// BenchmarkTelemetry_Ingest sweeps shard count × series count over the
// steady-state ingest path. The serial variants measure the allocation-free
// hot path; the parallel variants measure lock-stripe contention with every
// goroutine writing its own series, as concurrent clock domains do.
func BenchmarkTelemetry_Ingest(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		for _, nseries := range []int{128, 1024} {
			name := fmt.Sprintf("shards=%d/series=%d", shards, nseries)
			b.Run(name, func(b *testing.B) {
				st := New(Options{Shards: shards})
				keys := benchKeys(nseries)
				for i, k := range keys { // first touch off the clock
					if err := st.Ingest(k, "W", 0, float64(i)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := keys[i%nseries]
					at := time.Duration(i/nseries+1) * time.Millisecond
					if err := st.Ingest(k, "W", at, float64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/parallel", func(b *testing.B) {
				st := New(Options{Shards: shards})
				keys := benchKeys(nseries)
				var goroutine atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Each goroutine owns a private stripe of series so
					// per-series time ordering holds without coordination.
					g := int(goroutine.Add(1) - 1)
					at, i := time.Duration(0), 0
					for pb.Next() {
						k := keys[(g*31+i)%nseries]
						k.Node += fmt.Sprintf("-g%d", g)
						if err := st.Ingest(k, "W", at, float64(i)); err != nil {
							b.Fatal(err)
						}
						i++
						if i%nseries == 0 {
							at += time.Millisecond
						}
					}
				})
			})
		}
	}
}

// BenchmarkTelemetry_Query sweeps shard count × series count over the query
// path: a wildcard rollup scan with aggregation, and the cluster-wide TopK
// ranking envmond serves.
func BenchmarkTelemetry_Query(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		for _, nseries := range []int{128, 1024} {
			st := New(Options{Shards: shards, RawCapacity: 256})
			keys := benchKeys(nseries)
			for round := 0; round < 256; round++ {
				at := time.Duration(round) * 500 * time.Millisecond
				for i, k := range keys {
					if err := st.Ingest(k, "W", at, 100+float64(i%7)); err != nil {
						b.Fatal(err)
					}
				}
			}
			name := fmt.Sprintf("shards=%d/series=%d", shards, nseries)
			b.Run(name+"/window", func(b *testing.B) {
				q := Query{
					Domain:     "Total Power",
					From:       30 * time.Second,
					To:         90 * time.Second,
					Resolution: Res1s,
					Aggregate:  AggMean,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if frames := st.Query(q); len(frames) != nseries {
						b.Fatalf("frames = %d, want %d", len(frames), nseries)
					}
				}
			})
			b.Run(name+"/topk", func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ranked, _ := st.TopK(10, "", 0, 0, Res10s)
					if len(ranked) != 10 {
						b.Fatalf("ranked = %d, want 10", len(ranked))
					}
				}
			})
		}
	}
}
