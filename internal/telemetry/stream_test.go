package telemetry

import (
	"errors"
	"testing"
	"time"

	"envmon/internal/envdb"
	"envmon/internal/simclock"
	"envmon/internal/trace"
)

func demoSet(node string) *trace.Set {
	set := trace.NewSet()
	set.Meta["node"] = node
	s := set.Add(trace.NewSeries("MSR/Total Power", "W"))
	s.MustAppend(0, 100)
	s.MustAppend(time.Second, 110)
	set.Add(trace.NewSeries("MSR/Die Temperature", "degC")).MustAppend(time.Second, 55)
	return set
}

func TestMonEQSinkWrite(t *testing.T) {
	st := New(Options{})
	sink := MonEQSink{Store: st}
	if err := sink.Write(demoSet("c401-001")); err != nil {
		t.Fatal(err)
	}
	frames := st.Query(Query{Node: "c401-001", Backend: "MSR", Domain: "Total Power"})
	if len(frames) != 1 || len(frames[0].Points) != 2 || frames[0].Unit != "W" {
		t.Fatalf("frames = %+v", frames)
	}
	if st.NumSeries() != 2 {
		t.Errorf("series = %d, want 2", st.NumSeries())
	}
	// Node override takes precedence over set metadata.
	if err := (MonEQSink{Store: st, Node: "other"}).Write(demoSet("ignored")); err != nil {
		t.Fatal(err)
	}
	if frames := st.Query(Query{Node: "other"}); len(frames) != 2 {
		t.Errorf("override frames = %d, want 2", len(frames))
	}
}

func TestMonEQSinkErrorPropagates(t *testing.T) {
	st := New(Options{})
	st.Close()
	err := MonEQSink{Store: st}.Write(demoSet("n"))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSetCursorStreamsIncrementally(t *testing.T) {
	st := New(Options{})
	set := trace.NewSet()
	s1 := set.Add(trace.NewSeries("MSR/Total Power", "W"))
	s1.MustAppend(0, 100)
	cur := NewSetCursor(st, "n0", set)

	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Samples() != 1 {
		t.Fatalf("after first flush: %d samples", st.Samples())
	}
	// New samples and a new series appear between flushes.
	s1.MustAppend(time.Second, 110)
	s2 := set.Add(trace.NewSeries("NVML/Total Power", "W"))
	s2.MustAppend(time.Second, 60)
	if cur.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", cur.Pending())
	}
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Samples() != 3 || st.NumSeries() != 2 {
		t.Fatalf("after second flush: %d samples, %d series", st.Samples(), st.NumSeries())
	}
	// Idempotent when nothing new arrived: no duplicates.
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Samples() != 3 {
		t.Errorf("no-op flush duplicated samples: %d", st.Samples())
	}
	frames := st.Query(Query{Backend: "MSR"})
	if len(frames) != 1 || len(frames[0].Points) != 2 {
		t.Fatalf("MSR frames = %+v", frames)
	}
}

func TestSetCursorSteadyStateZeroAllocs(t *testing.T) {
	st := New(Options{})
	set := trace.NewSet()
	s := set.Add(trace.NewSeries("MSR/Total Power", "W"))
	s.Samples = make([]trace.Sample, 0, 4096)
	s.MustAppend(0, 1)
	cur := NewSetCursor(st, "n0", set)
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	at := time.Second
	allocs := testing.AllocsPerRun(1000, func() {
		s.MustAppend(at, 2)
		at += time.Second
		if err := cur.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Flush allocates %.1f per op, want 0", allocs)
	}
}

func TestSetCursorResumesAfterError(t *testing.T) {
	st := New(Options{MaxSeries: 1})
	set := trace.NewSet()
	set.Add(trace.NewSeries("MSR/Total Power", "W")).MustAppend(0, 1)
	set.Add(trace.NewSeries("NVML/Total Power", "W")).MustAppend(0, 2)
	cur := NewSetCursor(st, "n0", set)
	if err := cur.Flush(); !errors.Is(err, ErrSeriesLimit) {
		t.Fatalf("err = %v, want ErrSeriesLimit", err)
	}
	// The first series landed; the failed one is retried from its cursor.
	if st.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", st.Samples())
	}
	st.opts.MaxSeries = 0 // lift the limit; the cursor resumes cleanly
	if err := cur.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Samples() != 2 || st.NumSeries() != 2 {
		t.Errorf("after resume: %d samples, %d series", st.Samples(), st.NumSeries())
	}
}

func TestEnvDBBridgeDrains(t *testing.T) {
	clock := simclock.New()
	db := envdb.New()
	st := New(Options{})
	bridge, err := StartEnvDBBridge(clock, db, st, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A fake poller inserts two records per minute, stamped at insert time.
	clock.Every(60*time.Second, func(now time.Duration) {
		db.Insert(envdb.Record{Time: now, Location: "R00-B0", Sensor: "input_power", Value: 1000, Unit: "W"})
		db.Insert(envdb.Record{Time: now, Location: "R00-B0", Sensor: "coolant_temp", Value: 18, Unit: "degC"})
	})
	clock.Advance(10 * time.Minute)
	if err := bridge.Err(); err != nil {
		t.Fatal(err)
	}
	// The bridge drains [cursor, now): the batch stamped at the bridge's
	// own firing instant arrives one round later, so after 10 polls the
	// first 9 batches are in.
	if bridge.Moved() != 18 {
		t.Errorf("Moved = %d, want 18", bridge.Moved())
	}
	frames := st.Query(Query{Node: "R00-B0", Backend: EnvDBBackend, Domain: "input_power"})
	if len(frames) != 1 || len(frames[0].Points) != 9 {
		t.Fatalf("frames = %+v", frames)
	}
	// One more advance picks up the straggler batch.
	clock.Advance(60 * time.Second)
	if bridge.Moved() != 20 {
		t.Errorf("after extra round: Moved = %d, want 20", bridge.Moved())
	}
	bridge.Stop()
	clock.Advance(10 * time.Minute)
	if bridge.Moved() != 20 {
		t.Errorf("bridge kept draining after Stop")
	}
	// Validation.
	if _, err := StartEnvDBBridge(clock, nil, st, time.Second); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := StartEnvDBBridge(clock, db, st, 0); err == nil {
		t.Error("non-positive interval accepted")
	}
}
