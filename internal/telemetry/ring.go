package telemetry

import (
	"time"

	"envmon/internal/telemetry/storage"
)

// Point is one raw sample — an alias of the storage layer's type, so ring
// contents hand off to snapshots and chunks without conversion.
type Point = storage.Point

// pointRing is a fixed-capacity ring of raw samples. When full, pushing
// evicts the oldest sample. The backing array is allocated once, so the
// steady-state push path never allocates.
type pointRing struct {
	buf  []Point
	head int // index of the oldest element
	n    int
}

func newPointRing(capacity int) pointRing {
	return pointRing{buf: make([]Point, capacity)}
}

func (r *pointRing) push(p Point) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = p
		r.n++
		return
	}
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th element in age order (0 = oldest). i must be < n.
func (r *pointRing) at(i int) Point { return r.buf[(r.head+i)%len(r.buf)] }

func (r *pointRing) len() int { return r.n }

// first returns the oldest element, if any.
func (r *pointRing) first() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.buf[r.head], true
}

// gapRing is a fixed-capacity ring of failed-poll instants, evicting the
// oldest when full — the same bounded-memory discipline as the raw ring.
type gapRing struct {
	buf  []time.Duration
	head int
	n    int
}

func newGapRing(capacity int) gapRing {
	return gapRing{buf: make([]time.Duration, capacity)}
}

func (r *gapRing) push(t time.Duration) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = t
		r.n++
		return
	}
	r.buf[r.head] = t
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th gap in age order (0 = oldest). i must be < n.
func (r *gapRing) at(i int) time.Duration { return r.buf[(r.head+i)%len(r.buf)] }

func (r *gapRing) len() int { return r.n }

// Bucket is one rollup bucket: the incremental summary of every sample
// whose time falls in [Start, Start+period). An alias of the storage
// layer's type.
type Bucket = storage.Bucket

// bucketRing is a fixed-capacity ring of rollup buckets. The newest bucket
// is mutable (tail) so ingest updates it in place; a sample past the tail's
// window pushes a fresh bucket, evicting the oldest when full.
type bucketRing struct {
	buf  []Bucket
	head int
	n    int
}

func newBucketRing(capacity int) bucketRing {
	return bucketRing{buf: make([]Bucket, capacity)}
}

// tail returns the newest bucket for in-place update, or nil when empty.
func (r *bucketRing) tail() *Bucket {
	if r.n == 0 {
		return nil
	}
	return &r.buf[(r.head+r.n-1)%len(r.buf)]
}

func (r *bucketRing) push(b Bucket) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = b
		r.n++
		return
	}
	r.buf[r.head] = b
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th bucket in age order (0 = oldest). i must be < n.
func (r *bucketRing) at(i int) Bucket { return r.buf[(r.head+i)%len(r.buf)] }

func (r *bucketRing) len() int { return r.n }
