package telemetry

import (
	"strings"
	"testing"
	"time"

	"envmon/internal/obs"
)

func instrumented(t *testing.T, st *Store) (*obs.Registry, *obs.SlowLog) {
	t.Helper()
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(reg, time.Nanosecond, 16) // everything is slow
	st.Instrument(reg, obs.NewTracer(reg), slow)
	return reg, slow
}

func renderReg(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestInstrumentedMemoryStore(t *testing.T) {
	st := New(Options{Shards: 2, RawCapacity: 4})
	reg, slow := instrumented(t, st)
	key := SeriesKey{Node: "n01", Backend: "MSR", Domain: "Total Power"}
	for i := 0; i < 10; i++ {
		if err := st.Ingest(key, "W", time.Duration(i)*time.Second, 100+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.IngestGap(key, "W", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest(key, "W", 0, 1); err != ErrOutOfOrder {
		t.Fatalf("out-of-order ingest = %v", err)
	}
	frames := st.Query(Query{Domain: "Total Power"})
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}

	out := renderReg(t, reg)
	for _, want := range []string{
		"envmon_ingest_samples_total 10",
		"envmon_ingest_gaps_total 1",
		"envmon_ingest_errors_total 1",
		"envmon_series 1",
		"envmon_ring_evicted_samples_total 6", // 10 ingested, ring holds 4
		"envmon_persisted_samples_total 0",
		`envmon_pipeline_ops_total{stage="query"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Memory-only store registers no persistence families.
	if strings.Contains(out, "envmon_wal_") || strings.Contains(out, "envmon_block_") {
		t.Errorf("memory store exposes persistence metrics:\n%s", out)
	}
	// The 1 ns threshold makes every query slow; check the log captured it.
	ops := st.SlowOps()
	if len(ops) == 0 || ops[0].Kind != "query" {
		t.Fatalf("slow ops = %+v", ops)
	}
	if !strings.Contains(ops[0].Detail, `domain="Total Power"`) || !strings.Contains(ops[0].Detail, "frames=1") {
		t.Errorf("slow query detail = %q", ops[0].Detail)
	}
	if slow.Total() == 0 {
		t.Error("slow log total is zero")
	}
}

func TestInstrumentedPersistentStore(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Shards: 2, RawCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg, _ := instrumented(t, st)
	key := SeriesKey{Node: "n01", Backend: "MSR", Domain: "Total Power"}
	for i := 0; i < 100; i++ {
		if err := st.Ingest(key, "W", time.Duration(i)*time.Second, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	out := renderReg(t, reg)
	for _, want := range []string{
		"envmon_ingest_samples_total 100",
		"envmon_persisted_samples_total 100",
		"envmon_compactions_total 1",
		"envmon_block_files 1",
		"envmon_wal_rotations_total",
		"envmon_wal_appended_bytes_total",
		`envmon_pipeline_ops_total{stage="compaction"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Live WAL bytes are near-empty after Flush but appended bytes remember
	// the journaling volume.
	if strings.Contains(out, "envmon_wal_appended_bytes_total 0\n") {
		t.Errorf("appended bytes not counted:\n%s", out)
	}
	if !strings.Contains(out, "envmon_block_compression_ratio") {
		t.Errorf("compression ratio missing:\n%s", out)
	}
	// The slow log (1 ns threshold) must have seen the compaction.
	var sawCompaction bool
	for _, op := range st.SlowOps() {
		if op.Kind == "compaction" {
			sawCompaction = true
		}
	}
	if !sawCompaction {
		t.Errorf("no compaction in slow ops: %+v", st.SlowOps())
	}
}

// TestInstrumentedIngestZeroAlloc is the acceptance criterion: wiring the
// observability layer must not put allocations on the steady-state ingest
// path.
func TestInstrumentedIngestZeroAlloc(t *testing.T) {
	st := New(Options{})
	instrumented(t, st)
	key := SeriesKey{Node: "c401-003", Backend: "MSR", Domain: "Total Power"}
	if err := st.Ingest(key, "W", 0, 1); err != nil {
		t.Fatal(err)
	}
	next := time.Second
	allocs := testing.AllocsPerRun(1000, func() {
		if err := st.Ingest(key, "W", next, 118.0); err != nil {
			t.Fatal(err)
		}
		next += time.Second
	})
	if allocs != 0 {
		t.Errorf("instrumented ingest allocates %.1f per op, want 0", allocs)
	}
}

// benchIngest measures steady-state memory ingest; the instrumented
// variant wires the full observability layer first. Comparing the two is
// the self-overhead proof: the instrumentation must cost <2% of ingest
// throughput (the repro harness records both sides in BENCH_telemetry).
func benchIngest(b *testing.B, instrument bool) {
	st := New(Options{})
	if instrument {
		reg := obs.NewRegistry()
		st.Instrument(reg, obs.NewTracer(reg), obs.NewSlowLog(reg, 100*time.Millisecond, 64))
	}
	key := SeriesKey{Node: "c401-003", Backend: "MSR", Domain: "Total Power"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Ingest(key, "W", time.Duration(i)*time.Millisecond, 118.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestPlain(b *testing.B)        { benchIngest(b, false) }
func BenchmarkIngestInstrumented(b *testing.B) { benchIngest(b, true) }

func TestInstrumentedJournaledIngestZeroAlloc(t *testing.T) {
	st, err := Open(t.TempDir(), Options{RawCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	instrumented(t, st)
	key := SeriesKey{Node: "c401-003", Backend: "MSR", Domain: "Total Power"}
	if err := st.Ingest(key, "W", 0, 1); err != nil {
		t.Fatal(err)
	}
	next := time.Second
	allocs := testing.AllocsPerRun(500, func() {
		if err := st.Ingest(key, "W", next, 118.0); err != nil {
			t.Fatal(err)
		}
		next += time.Second
	})
	if allocs != 0 {
		t.Errorf("instrumented journaled ingest allocates %.1f per op, want 0", allocs)
	}
}
