package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"envmon/internal/telemetry/storage"
)

var testKey = storage.SeriesKey{Node: "c000-001", Backend: "MSR", Domain: "Total Power"}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh := w.Shard(0)
	ref, err := sh.AppendSeries(testKey, "W")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sh.AppendSample(ref, uint64(i), time.Duration(i)*time.Second, float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.AppendGap(ref, 0, 42*time.Second); err != nil {
		t.Fatal(err)
	}
	key2 := storage.SeriesKey{Node: "c000-002", Backend: "NVML", Domain: "Total Power"}
	sh2 := w.Shard(1)
	ref2, err := sh2.AppendSeries(key2, "W")
	if err != nil {
		t.Fatal(err)
	}
	if err := sh2.AppendSample(ref2, 0, time.Second, 99); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	samples, gaps, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 101 || len(gaps) != 1 {
		t.Fatalf("replayed %d samples %d gaps, want 101 and 1", len(samples), len(gaps))
	}
	// Sorted by (key, index): c000-001 first.
	for i := 0; i < 100; i++ {
		s := samples[i]
		if s.Key != testKey || s.Unit != "W" || s.Index != uint64(i) ||
			s.T != time.Duration(i)*time.Second || s.V != float64(i)*1.5 {
			t.Fatalf("sample %d = %+v", i, s)
		}
	}
	if s := samples[100]; s.Key != key2 || s.V != 99 {
		t.Fatalf("sample 100 = %+v", s)
	}
	if g := gaps[0]; g.Key != testKey || g.Index != 0 || g.T != 42*time.Second {
		t.Fatalf("gap = %+v", g)
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := w.Shard(0)
	ref, _ := sh.AppendSeries(testKey, "W")
	for i := 0; i < 10; i++ {
		if err := sh.AppendSample(ref, uint64(i), time.Duration(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-payload, as a crash during a write would.
	seg := filepath.Join(dir, "0", "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	samples, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 9 {
		t.Fatalf("replayed %d samples after torn tail, want 9", len(samples))
	}

	// Corrupt a middle byte: replay stops there but keeps the prefix.
	data[30] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	samples, _, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) >= 10 {
		t.Fatalf("replayed %d samples from a corrupt segment", len(samples))
	}
}

func TestRotateDropsSegmentAndResetsRefs(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := w.Shard(0)
	ref, _ := sh.AppendSeries(testKey, "W")
	if err := sh.AppendSample(ref, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sh.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Old segment is gone; its records do not replay.
	samples, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Fatalf("replayed %d samples after rotate, want 0", len(samples))
	}
	// The new segment re-declares series.
	ref2, err := sh.AppendSeries(testKey, "W")
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AppendSample(ref2, 1, time.Second, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	samples, _, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Index != 1 {
		t.Fatalf("samples after rotate = %+v", samples)
	}
}

func TestCreateResumesSequenceNumbers(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Shard(0).Rotate(); err != nil { // now at seq 2
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Shard(0).seq; got != 3 {
		t.Fatalf("resumed seq = %d, want 3", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh := w.Shard(2)
	ref, _ := sh.AppendSeries(testKey, "W")
	if err := sh.AppendSample(ref, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Reset(dir); err != nil {
		t.Fatal(err)
	}
	samples, gaps, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 || len(gaps) != 0 {
		t.Fatal("records survived Reset")
	}
}

func TestAppendSteadyStateZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sh := w.Shard(0)
	ref, _ := sh.AppendSeries(testKey, "W")
	i := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		if err := sh.AppendSample(ref, i, time.Duration(i)*time.Millisecond, 3.14); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state append allocates %.1f times per record, want 0", allocs)
	}
}
