// Package wal is the write-ahead log of the telemetry storage engine: an
// append-only journal of ingested samples and gap markers, segmented per
// store shard, that makes every acknowledged ingest durable before the
// head's in-memory rings absorb it.
//
// Layout under the WAL root:
//
//	wal/<shard>/<seq>.wal
//
// Each shard directory belongs to one lock-striped store shard, so WAL
// appends ride the shard lock the ingest path already holds — no extra
// synchronization, and append throughput scales with the shard count.
//
// Records are self-describing: every sample and gap record carries its
// series' *absolute index* in that series' ingest stream (sample #0, #1,
// …). Replay therefore needs no coordination with the block store beyond
// "how many leading entries are already persisted": a record whose index
// is below that watermark is a duplicate from an interrupted compaction
// and is skipped, one at the watermark is applied, and ordering across
// segments — even across restarts that changed the shard count — is
// recovered by sorting on (series, index). Crash-anywhere safety falls
// out of this idempotence rather than from a careful deletion protocol.
//
// Framing is length + CRC32C per record. A torn tail (the record being
// written when the process died) fails its checksum and cleanly ends
// replay of that segment; everything acknowledged before it is intact,
// because Append hands each record to the OS before the ingest returns.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"envmon/internal/telemetry/storage"
)

const (
	// magic opens every segment file.
	magic   = "ENVW"
	version = 1

	recSeries = 1
	recSample = 2
	recGap    = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL is one store's journal: a set of per-shard appenders under a common
// root directory.
type WAL struct {
	dir    string
	shards []*Shard
}

// Shard is one shard's appender. Callers must serialize access per shard
// (the store's shard lock does this naturally).
type Shard struct {
	dir       string
	f         *os.File
	seq       uint64
	size      int64
	appended  int64 // bytes ever written, across rotations
	rotations uint64
	nextRef   uint64
	buf       []byte
}

// Create opens fresh segments for the given shard count under dir,
// creating directories as needed. Existing segments are left alone (new
// segments get higher sequence numbers); call Replay first and Reset to
// clear recovered segments.
func Create(dir string, shards int) (*WAL, error) {
	w := &WAL{dir: dir}
	for i := 0; i < shards; i++ {
		sd := filepath.Join(dir, strconv.Itoa(i))
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		seqs, err := segmentSeqs(sd)
		if err != nil {
			return nil, err
		}
		next := uint64(1)
		if n := len(seqs); n > 0 {
			next = seqs[n-1] + 1
		}
		sh := &Shard{dir: sd, seq: next}
		if err := sh.openSegment(); err != nil {
			w.Close()
			return nil, err
		}
		w.shards = append(w.shards, sh)
	}
	return w, nil
}

// Shard returns the i-th shard appender.
func (w *WAL) Shard(i int) *Shard { return w.shards[i] }

// Size reports the journal's total on-disk bytes across live segments.
func (w *WAL) Size() int64 {
	var n int64
	for _, sh := range w.shards {
		n += sh.size
	}
	return n
}

// Sync flushes every shard's segment to stable storage.
func (w *WAL) Sync() error {
	for _, sh := range w.shards {
		if err := sh.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard's open segment (without deleting anything).
func (w *WAL) Close() error {
	var first error
	for _, sh := range w.shards {
		if sh == nil || sh.f == nil {
			continue
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.f = nil
	}
	return first
}

func (sh *Shard) openSegment() error {
	name := filepath.Join(sh.dir, fmt.Sprintf("%08d.wal", sh.seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, 8)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	sh.f = f
	sh.size = int64(len(hdr))
	sh.appended += int64(len(hdr))
	sh.nextRef = 0
	return nil
}

// Size reports the shard's live segment bytes.
func (sh *Shard) Size() int64 { return sh.size }

// Appended reports the total bytes ever written to this shard's journal,
// across rotations — the journaling I/O volume, where Size is the live
// footprint. Synchronized like every other Shard method: by the caller's
// per-shard serialization.
func (sh *Shard) Appended() int64 { return sh.appended }

// Rotations reports how many times this shard's segment has rotated.
func (sh *Shard) Rotations() uint64 { return sh.rotations }

// Sync flushes the open segment to stable storage.
func (sh *Shard) Sync() error {
	if sh.f == nil {
		return nil
	}
	return sh.f.Sync()
}

// Rotate seals a compaction: the open segment's records are all persisted
// in a block now, so it is deleted along with any older segments, and a
// fresh segment begins. Series refs reset — the next append of each
// series re-declares it in the new segment.
func (sh *Shard) Rotate() error {
	if sh.f != nil {
		if err := sh.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		sh.f = nil
	}
	seqs, err := segmentSeqs(sh.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= sh.seq {
			if err := os.Remove(filepath.Join(sh.dir, fmt.Sprintf("%08d.wal", seq))); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	sh.seq++
	sh.rotations++
	return sh.openSegment()
}

// AppendSeries declares a series in the current segment and returns the
// ref later sample/gap records use. Refs are segment-scoped.
func (sh *Shard) AppendSeries(key storage.SeriesKey, unit string) (uint64, error) {
	sh.nextRef++
	ref := sh.nextRef
	p := sh.begin()
	p = append(p, recSeries)
	p = binary.AppendUvarint(p, ref)
	p = appendString(p, key.Node)
	p = appendString(p, key.Backend)
	p = appendString(p, key.Domain)
	p = appendString(p, unit)
	return ref, sh.commit(p)
}

// AppendSample journals one sample: ref from AppendSeries, idx the
// sample's absolute index in its series' stream.
func (sh *Shard) AppendSample(ref, idx uint64, t time.Duration, v float64) error {
	p := sh.begin()
	p = append(p, recSample)
	p = binary.AppendUvarint(p, ref)
	p = binary.AppendUvarint(p, idx)
	p = binary.AppendVarint(p, int64(t))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
	return sh.commit(p)
}

// AppendGap journals one gap marker at absolute gap index idx.
func (sh *Shard) AppendGap(ref, idx uint64, t time.Duration) error {
	p := sh.begin()
	p = append(p, recGap)
	p = binary.AppendUvarint(p, ref)
	p = binary.AppendUvarint(p, idx)
	p = binary.AppendVarint(p, int64(t))
	return sh.commit(p)
}

// begin starts a record in the reusable scratch buffer, leaving room for
// the 8-byte frame header, so steady-state appends allocate nothing and
// each record reaches the OS in a single write.
func (sh *Shard) begin() []byte {
	if cap(sh.buf) < 64 {
		sh.buf = make([]byte, 0, 256)
	}
	sh.buf = sh.buf[:8]
	return sh.buf
}

func (sh *Shard) commit(p []byte) error {
	sh.buf = p[:0] // keep a grown buffer for reuse
	payload := p[8:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(p[4:8], crc32.Checksum(payload, castagnoli))
	n, err := sh.f.Write(p)
	sh.size += int64(n)
	sh.appended += int64(n)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// Sample is one replayed sample record, resolved to its series.
type Sample struct {
	Key   storage.SeriesKey
	Unit  string
	Index uint64
	T     time.Duration
	V     float64
}

// Gap is one replayed gap record, resolved to its series.
type Gap struct {
	Key   storage.SeriesKey
	Unit  string
	Index uint64
	T     time.Duration
}

// Replay reads every shard directory under dir and returns all decodable
// sample and gap records, sorted by (series, index) — the order they can
// be applied in regardless of which shard layout wrote them. Segments end
// silently at the first torn or corrupt record (the crash tail); wholly
// unreadable files are an error.
func Replay(dir string) ([]Sample, []Gap, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var samples []Sample
	var gaps []Gap
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sd := filepath.Join(dir, e.Name())
		seqs, err := segmentSeqs(sd)
		if err != nil {
			return nil, nil, err
		}
		for _, seq := range seqs {
			name := filepath.Join(sd, fmt.Sprintf("%08d.wal", seq))
			if samples, gaps, err = replaySegment(name, samples, gaps); err != nil {
				return nil, nil, err
			}
		}
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Key != samples[j].Key {
			return storage.KeyLess(samples[i].Key, samples[j].Key)
		}
		return samples[i].Index < samples[j].Index
	})
	sort.SliceStable(gaps, func(i, j int) bool {
		if gaps[i].Key != gaps[j].Key {
			return storage.KeyLess(gaps[i].Key, gaps[j].Key)
		}
		return gaps[i].Index < gaps[j].Index
	})
	return samples, gaps, nil
}

type seriesDecl struct {
	key  storage.SeriesKey
	unit string
}

func replaySegment(name string, samples []Sample, gaps []Gap) ([]Sample, []Gap, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return samples, gaps, fmt.Errorf("wal: %w", err)
	}
	if len(data) < 8 || string(data[:4]) != magic {
		return samples, gaps, fmt.Errorf("wal: %s: bad segment header", name)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return samples, gaps, fmt.Errorf("wal: %s: unsupported version %d", name, v)
	}
	refs := map[uint64]seriesDecl{}
	off := 8
	for off+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || off+8+plen > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt tail
		}
		off += 8 + plen
		if err := decodeRecord(payload, refs, &samples, &gaps); err != nil {
			return samples, gaps, fmt.Errorf("wal: %s: %w", name, err)
		}
	}
	return samples, gaps, nil
}

func decodeRecord(p []byte, refs map[uint64]seriesDecl, samples *[]Sample, gaps *[]Gap) error {
	if len(p) == 0 {
		return io.ErrUnexpectedEOF
	}
	typ, p := p[0], p[1:]
	ref, n := binary.Uvarint(p)
	if n <= 0 {
		return io.ErrUnexpectedEOF
	}
	p = p[n:]
	switch typ {
	case recSeries:
		var d seriesDecl
		var err error
		if d.key.Node, p, err = readString(p); err != nil {
			return err
		}
		if d.key.Backend, p, err = readString(p); err != nil {
			return err
		}
		if d.key.Domain, p, err = readString(p); err != nil {
			return err
		}
		if d.unit, _, err = readString(p); err != nil {
			return err
		}
		refs[ref] = d
	case recSample:
		d, ok := refs[ref]
		if !ok {
			return fmt.Errorf("sample record references undeclared series %d", ref)
		}
		idx, n := binary.Uvarint(p)
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		p = p[n:]
		t, n := binary.Varint(p)
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		p = p[n:]
		if len(p) < 8 {
			return io.ErrUnexpectedEOF
		}
		*samples = append(*samples, Sample{
			Key: d.key, Unit: d.unit, Index: idx,
			T: time.Duration(t), V: math.Float64frombits(binary.LittleEndian.Uint64(p)),
		})
	case recGap:
		d, ok := refs[ref]
		if !ok {
			return fmt.Errorf("gap record references undeclared series %d", ref)
		}
		idx, n := binary.Uvarint(p)
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		p = p[n:]
		t, n := binary.Varint(p)
		if n <= 0 {
			return io.ErrUnexpectedEOF
		}
		*gaps = append(*gaps, Gap{Key: d.key, Unit: d.unit, Index: idx, T: time.Duration(t)})
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}

func readString(p []byte) (string, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(p[n : n+int(l)]), p[n+int(l):], nil
}

// Reset deletes every segment under dir (all shard subdirectories). The
// engine calls this once recovery has re-persisted everything the journal
// held.
func Reset(dir string) error {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

func segmentSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
