package telemetry

import (
	"fmt"
	"time"

	"envmon/internal/trace"
)

// MonEQSink is a moneq.Sink adapter: at Finalize (and on Flush retries)
// the session's collected set is ingested into the store, one telemetry
// series per trace series. It satisfies the moneq.Sink interface
// structurally, so moneq does not import this package and this package
// does not import moneq.
//
// A failing ingest (closed store, series limit, out-of-order data)
// surfaces through Finalize exactly like a CSV or JSON sink write error:
// the report stays valid, the data stays accessible, and the write can be
// retried against another store with Monitor.Flush. Note that unlike the
// file sinks, ingestion is additive — retrying against a store that
// already absorbed part of the set records those samples again.
type MonEQSink struct {
	// Store receives the samples. Required.
	Store *Store
	// Node overrides the session's node name (set.Meta["node"]) as the
	// SeriesKey.Node of every ingested series.
	Node string
}

// Name implements moneq.Sink.
func (MonEQSink) Name() string { return "telemetry" }

// Write implements moneq.Sink: every sample of every series in the set is
// ingested under (node, backend, domain) keys derived from the trace
// series names ("method/capability").
func (s MonEQSink) Write(set *trace.Set) error {
	node := s.Node
	if node == "" {
		node = set.Meta["node"]
	}
	for _, ts := range set.Series {
		backend, domain := SplitSeriesName(ts.Name)
		key := SeriesKey{Node: node, Backend: backend, Domain: domain}
		for _, smp := range ts.Samples {
			if err := s.Store.Ingest(key, ts.Unit, smp.T, smp.V); err != nil {
				return fmt.Errorf("telemetry: ingesting series %q: %w", ts.Name, err)
			}
		}
		for _, t := range ts.Gaps {
			if err := s.Store.IngestGap(key, ts.Unit, t); err != nil {
				return fmt.Errorf("telemetry: ingesting gaps of series %q: %w", ts.Name, err)
			}
		}
	}
	return nil
}

// SetCursor streams a live trace.Set into a store incrementally: each
// Flush ingests only the samples that appeared since the previous Flush.
// This is how a running MonEQ job feeds the aggregation layer while the
// job is still collecting — wire one cursor per monitor to its Set() and
// call Flush from the clock-domain epoch barrier, where every domain is
// parked and the sets are quiescent.
//
// Keys and units are resolved once per series, so a steady-state Flush
// (existing series, new samples) performs zero allocations beyond the
// store's own ingest path.
type SetCursor struct {
	// Offset is added to every sample and gap time on ingest. A restarted
	// daemon sets it past the recovered store's MaxTime so a fresh
	// simulation clock (which restarts at zero) never runs backwards
	// against recovered series. Set before the first Flush.
	Offset time.Duration

	store    *Store
	node     string
	set      *trace.Set
	keys     []SeriesKey // parallel to set.Series
	units    []string
	done     []int // samples already ingested per series
	gapsDone []int // gap markers already ingested per series
}

// NewSetCursor returns a cursor streaming set into store under the given
// node name (empty selects set.Meta["node"] at first need).
func NewSetCursor(store *Store, node string, set *trace.Set) *SetCursor {
	return &SetCursor{store: store, node: node, set: set}
}

// Flush ingests every sample appended to the set since the last Flush.
// On error the cursor position is preserved up to the failing sample, so
// a later Flush resumes without duplication. Flush must not run
// concurrently with writers of the set (call it at an epoch barrier).
func (c *SetCursor) Flush() error {
	// One ingest-stage span per Flush (an epoch's worth of samples), not
	// per sample — the span cost amortizes over the whole batch.
	if o := c.store.obs; o != nil {
		defer o.ingestStage.Begin().End(0)
	}
	for i, ts := range c.set.Series {
		if i == len(c.keys) {
			node := c.node
			if node == "" {
				node = c.set.Meta["node"]
			}
			backend, domain := SplitSeriesName(ts.Name)
			c.keys = append(c.keys, SeriesKey{Node: node, Backend: backend, Domain: domain})
			c.units = append(c.units, ts.Unit)
			c.done = append(c.done, 0)
			c.gapsDone = append(c.gapsDone, 0)
		}
		for j := c.done[i]; j < len(ts.Samples); j++ {
			if err := c.store.Ingest(c.keys[i], c.units[i], ts.Samples[j].T+c.Offset, ts.Samples[j].V); err != nil {
				c.done[i] = j
				return fmt.Errorf("telemetry: streaming series %q: %w", ts.Name, err)
			}
		}
		c.done[i] = len(ts.Samples)
		for j := c.gapsDone[i]; j < len(ts.Gaps); j++ {
			if err := c.store.IngestGap(c.keys[i], c.units[i], ts.Gaps[j]+c.Offset); err != nil {
				c.gapsDone[i] = j
				return fmt.Errorf("telemetry: streaming gaps of series %q: %w", ts.Name, err)
			}
		}
		c.gapsDone[i] = len(ts.Gaps)
	}
	return nil
}

// Pending reports how many samples the set currently holds beyond the
// cursor — the backlog the next Flush would ingest.
func (c *SetCursor) Pending() int {
	pending := 0
	for i, ts := range c.set.Series {
		if i < len(c.done) {
			pending += len(ts.Samples) - c.done[i]
		} else {
			pending += len(ts.Samples)
		}
	}
	return pending
}
