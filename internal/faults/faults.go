// Package faults is the deterministic fault injector of the robustness
// harness: it wraps any core.Collector with a configurable fault plan —
// transient read errors, latency spikes, stuck/stale readings, link
// flapping, and permanent device loss — so the resilience layer and the
// chaos tests can exercise every failure mode the paper's mechanisms show
// in practice (EMON data arriving late or not at all, NVML reporting
// "GPU is lost", the Phi SCIF daemon crashing, the environmental database
// refusing inserts at capacity).
//
// Injection is simrand-seeded and fully deterministic: each injector draws
// from its own stream split off the plan seed by a stable label, and draws
// happen only on Collect, whose per-collector call sequence is a pure
// function of the simulated clock. Two runs with the same seed — at any
// clock-domain shard count or worker count — replay byte-identical faults.
package faults

import (
	"errors"
	"fmt"
	"time"

	"envmon/internal/core"
	"envmon/internal/simrand"
)

// Injected fault errors. Sentinels, so policy layers can classify without
// string matching.
var (
	// ErrTransient is an injected one-shot read failure (a dropped NVML
	// sample, a flaky pseudo-file read). Retrying is expected to succeed.
	ErrTransient = errors.New("faults: injected transient read error")
	// ErrFlapping is returned during the down half of a flap window (a
	// link or daemon that comes and goes on a schedule).
	ErrFlapping = errors.New("faults: link down (flap window)")
	// ErrDeviceLost is returned after a permanent loss point — the
	// simulation's NVML_ERROR_GPU_IS_LOST / dead SCIF daemon / envdb
	// outage. Retrying within the loss window never succeeds.
	ErrDeviceLost = errors.New("faults: device lost")
)

// Loss schedules a permanent device loss for collectors of one method.
type Loss struct {
	// Method matches core.Collector.Method() (e.g. "NVML", "SysMgmt API").
	Method string
	// Instance selects which wrapped collector of that method is lost, in
	// decoration/build order; negative loses every instance.
	Instance int
	// At is the simulated time the device disappears.
	At time.Duration
	// Until is the simulated time the device comes back; zero means never
	// (a true permanent loss).
	Until time.Duration
}

// matches reports whether the loss applies to an injector wrapping the
// given method at the given build instance.
func (l Loss) matches(method string, instance int) bool {
	return l.Method == method && (l.Instance < 0 || l.Instance == instance)
}

// Plan configures the fault behaviors of every injector derived from it.
// The zero value injects nothing.
type Plan struct {
	// Seed roots the deterministic draw streams.
	Seed uint64
	// Transient is the per-poll probability of a one-shot read error.
	Transient float64
	// Spike is the per-poll probability of a latency spike: the poll
	// succeeds but costs SpikeFactor times the mechanism's base cost in
	// simulated time, so overhead accounting still holds.
	Spike float64
	// SpikeFactor multiplies the base cost on a spiked poll; values below
	// 1 select the default of 10.
	SpikeFactor float64
	// Stuck is the per-poll probability of entering a stuck window, during
	// which the collector serves its previous readings unchanged (stale
	// values with their original timestamps — the sensor stopped updating
	// but the access path still answers).
	Stuck float64
	// StuckFor is the stuck-window length; non-positive selects 1 s.
	StuckFor time.Duration
	// Flap, when positive, alternates the device between up and down
	// windows of this length (down during odd windows).
	Flap time.Duration
	// Lose schedules permanent device losses.
	Lose []Loss
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.Transient > 0 || p.Spike > 0 || p.Stuck > 0 || p.Flap > 0 || len(p.Lose) > 0
}

// Validate checks probabilities and loss windows.
func (p Plan) Validate() error {
	for name, prob := range map[string]float64{
		"transient": p.Transient, "spike": p.Spike, "stuck": p.Stuck,
	} {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", name, prob)
		}
	}
	for _, l := range p.Lose {
		if l.Method == "" {
			return fmt.Errorf("faults: loss with empty method")
		}
		if l.Until != 0 && l.Until <= l.At {
			return fmt.Errorf("faults: loss of %q heals at %v, before loss at %v", l.Method, l.Until, l.At)
		}
	}
	return nil
}

// Counters reports what an injector has done so far, for test assertions
// and degraded-mode accounting.
type Counters struct {
	Polls      int
	Transients int
	Spikes     int
	StuckPolls int
	FlapPolls  int
	LostPolls  int
}

// Injector wraps a collector with a fault plan. It implements
// core.Collector and core.BatchCollector and is driven from the wrapped
// collector's clock domain, so it needs no locking.
type Injector struct {
	col      core.Collector
	plan     Plan
	rng      *simrand.Source
	instance int

	stuckUntil time.Duration
	cache      []core.Reading // last good readings, served while stuck
	lastCost   time.Duration
	counters   Counters
}

// Wrap returns an injector around col. label names the instance's draw
// stream (stable across runs — e.g. "NVML/NVML#3"); instance is the
// build index used by Loss matching.
func Wrap(col core.Collector, plan Plan, label string, instance int) *Injector {
	return &Injector{
		col:      col,
		plan:     plan,
		rng:      simrand.New(plan.Seed).Split(label),
		instance: instance,
		lastCost: col.Cost(),
	}
}

// Unwrap exposes the wrapped collector.
func (j *Injector) Unwrap() core.Collector { return j.col }

// Counters reports the injection counts so far.
func (j *Injector) Counters() Counters { return j.counters }

// Platform implements core.Collector.
func (j *Injector) Platform() core.Platform { return j.col.Platform() }

// Method implements core.Collector.
func (j *Injector) Method() string { return j.col.Method() }

// MinInterval implements core.Collector.
func (j *Injector) MinInterval() time.Duration { return j.col.MinInterval() }

// Cost implements core.Collector: the wrapped mechanism's cost for the
// most recent poll, inflated on a spiked poll. Failed polls still cost the
// base query time — a timeout is not free.
func (j *Injector) Cost() time.Duration { return j.lastCost }

// Collect implements core.Collector.
func (j *Injector) Collect(now time.Duration) ([]core.Reading, error) {
	return j.CollectInto(nil, now)
}

// lost reports whether a loss window covers now for this instance.
func (j *Injector) lost(now time.Duration) bool {
	for _, l := range j.plan.Lose {
		if l.matches(j.col.Method(), j.instance) && now >= l.At && (l.Until == 0 || now < l.Until) {
			return true
		}
	}
	return false
}

// CollectInto implements core.BatchCollector. Fault checks run in a fixed
// order — loss, flap, stuck, transient, spike — so the draw stream is
// consumed identically on every replay.
func (j *Injector) CollectInto(buf []core.Reading, now time.Duration) ([]core.Reading, error) {
	j.counters.Polls++
	j.lastCost = j.col.Cost()
	if j.lost(now) {
		j.counters.LostPolls++
		return buf[:0], fmt.Errorf("faults: %s: %w", j.col.Method(), ErrDeviceLost)
	}
	if p := j.plan.Flap; p > 0 && (now/p)%2 == 1 {
		j.counters.FlapPolls++
		return buf[:0], fmt.Errorf("faults: %s: %w", j.col.Method(), ErrFlapping)
	}
	if now < j.stuckUntil && len(j.cache) > 0 {
		j.counters.StuckPolls++
		return append(buf[:0], j.cache...), nil
	}
	if j.rng.Bool(j.plan.Transient) {
		j.counters.Transients++
		return buf[:0], fmt.Errorf("faults: %s: %w", j.col.Method(), ErrTransient)
	}
	if j.rng.Bool(j.plan.Spike) {
		j.counters.Spikes++
		factor := j.plan.SpikeFactor
		if factor < 1 {
			factor = 10
		}
		j.lastCost = time.Duration(float64(j.col.Cost()) * factor)
	}
	if j.rng.Bool(j.plan.Stuck) {
		dur := j.plan.StuckFor
		if dur <= 0 {
			dur = time.Second
		}
		j.stuckUntil = now + dur
	}
	readings, err := core.CollectInto(j.col, buf, now)
	if err == nil {
		j.cache = append(j.cache[:0], readings...)
	}
	return readings, err
}
