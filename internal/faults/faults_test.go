package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"envmon/internal/core"
)

// fakeCollector is a healthy backend: every poll yields one power reading
// whose value encodes the poll time.
type fakeCollector struct {
	platform core.Platform
	method   string
	cost     time.Duration
	polls    int
}

func (f *fakeCollector) Platform() core.Platform    { return f.platform }
func (f *fakeCollector) Method() string             { return f.method }
func (f *fakeCollector) Cost() time.Duration        { return f.cost }
func (f *fakeCollector) MinInterval() time.Duration { return 100 * time.Millisecond }
func (f *fakeCollector) Collect(now time.Duration) ([]core.Reading, error) {
	return f.CollectInto(nil, now)
}

func (f *fakeCollector) CollectInto(buf []core.Reading, now time.Duration) ([]core.Reading, error) {
	f.polls++
	return append(buf[:0], core.Reading{
		Cap:   core.Capability{Component: core.Total, Metric: core.Power},
		Value: float64(now / time.Millisecond),
		Unit:  "W",
		Time:  now,
	}), nil
}

func newFake() *fakeCollector {
	return &fakeCollector{platform: core.NVML, method: "NVML", cost: 220 * time.Microsecond}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=7,transient=0.1,spike=0.05,spikefactor=20,stuck=0.01,stuckfor=2s,flap=30s," +
		"lose=NVML@30s,lose=SysMgmt API#2@5s-20s,lose=EMON#*@1m0s"
	plan, err := ParsePlan(spec, 1)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.Seed != 7 || plan.Transient != 0.1 || plan.SpikeFactor != 20 {
		t.Fatalf("parsed plan mismatch: %+v", plan)
	}
	if len(plan.Lose) != 3 {
		t.Fatalf("want 3 losses, got %d", len(plan.Lose))
	}
	if l := plan.Lose[1]; l.Method != "SysMgmt API" || l.Instance != 2 || l.At != 5*time.Second || l.Until != 20*time.Second {
		t.Fatalf("loss 1 parsed wrong: %+v", l)
	}
	if l := plan.Lose[2]; l.Instance != -1 {
		t.Fatalf("wildcard instance parsed wrong: %+v", l)
	}
	replan, err := ParsePlan(plan.String(), 1)
	if err != nil {
		t.Fatalf("re-parse %q: %v", plan.String(), err)
	}
	if fmt.Sprintf("%+v", replan) != fmt.Sprintf("%+v", plan) {
		t.Fatalf("round trip changed plan:\n  %+v\n  %+v", plan, replan)
	}
}

func TestParsePlanDefaultsAndErrors(t *testing.T) {
	plan, err := ParsePlan("", 42)
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if plan.Enabled() {
		t.Fatal("empty spec must be inert")
	}
	if plan.Seed != 42 {
		t.Fatalf("default seed not applied: %d", plan.Seed)
	}
	for _, bad := range []string{
		"transient", "transient=x", "transient=1.5", "bogus=1",
		"lose=NVML", "lose=NVML@x", "lose=NVML#z@1s", "lose=NVML@10s-5s", "lose=@10s",
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// pollTrace runs n polls at interval and returns a replay signature:
// error identities and reading values per poll.
func pollTrace(j *Injector, n int, interval time.Duration) string {
	var out string
	var buf []core.Reading
	var err error
	for i := 0; i < n; i++ {
		now := time.Duration(i) * interval
		buf, err = j.CollectInto(buf, now)
		switch {
		case errors.Is(err, ErrTransient):
			out += "T"
		case errors.Is(err, ErrFlapping):
			out += "F"
		case errors.Is(err, ErrDeviceLost):
			out += "L"
		case err != nil:
			out += "?"
		default:
			out += fmt.Sprintf("(%v@%v)", buf[0].Value, j.Cost())
		}
	}
	return out
}

func TestInjectorDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 9, Transient: 0.2, Spike: 0.1, Stuck: 0.05, StuckFor: 500 * time.Millisecond}
	a := pollTrace(Wrap(newFake(), plan, "NVML/NVML#0", 0), 500, 100*time.Millisecond)
	b := pollTrace(Wrap(newFake(), plan, "NVML/NVML#0", 0), 500, 100*time.Millisecond)
	if a != b {
		t.Fatal("same seed+label replayed differently")
	}
	c := pollTrace(Wrap(newFake(), plan, "NVML/NVML#1", 1), 500, 100*time.Millisecond)
	if a == c {
		t.Fatal("different labels drew identical fault sequences")
	}
}

func TestInjectorTransientRate(t *testing.T) {
	plan := Plan{Seed: 3, Transient: 0.25}
	j := Wrap(newFake(), plan, "x", 0)
	var buf []core.Reading
	for i := 0; i < 4000; i++ {
		buf, _ = j.CollectInto(buf, time.Duration(i)*time.Millisecond)
	}
	cnt := j.Counters()
	rate := float64(cnt.Transients) / float64(cnt.Polls)
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("transient rate %v far from 0.25", rate)
	}
}

func TestInjectorLossWindows(t *testing.T) {
	plan := Plan{Seed: 1, Lose: []Loss{
		{Method: "NVML", Instance: 0, At: time.Second},
		{Method: "NVML", Instance: 2, At: 2 * time.Second, Until: 3 * time.Second},
	}}
	j0 := Wrap(newFake(), plan, "a", 0)
	if _, err := j0.CollectInto(nil, 500*time.Millisecond); err != nil {
		t.Fatalf("before loss: %v", err)
	}
	if _, err := j0.CollectInto(nil, time.Second); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("at loss point: %v", err)
	}
	if _, err := j0.CollectInto(nil, time.Hour); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("permanent loss healed: %v", err)
	}
	// instance 1 is untouched by either loss
	j1 := Wrap(newFake(), plan, "b", 1)
	if _, err := j1.CollectInto(nil, time.Hour); err != nil {
		t.Fatalf("unlisted instance lost: %v", err)
	}
	// instance 2 heals at Until
	j2 := Wrap(newFake(), plan, "c", 2)
	if _, err := j2.CollectInto(nil, 2500*time.Millisecond); !errors.Is(err, ErrDeviceLost) {
		t.Fatal("instance 2 not lost inside window")
	}
	if _, err := j2.CollectInto(nil, 3*time.Second); err != nil {
		t.Fatalf("instance 2 still lost after Until: %v", err)
	}
}

func TestInjectorFlap(t *testing.T) {
	plan := Plan{Seed: 1, Flap: time.Second}
	j := Wrap(newFake(), plan, "a", 0)
	if _, err := j.CollectInto(nil, 500*time.Millisecond); err != nil {
		t.Fatalf("up window errored: %v", err)
	}
	if _, err := j.CollectInto(nil, 1500*time.Millisecond); !errors.Is(err, ErrFlapping) {
		t.Fatal("down window did not flap")
	}
	if _, err := j.CollectInto(nil, 2500*time.Millisecond); err != nil {
		t.Fatalf("second up window errored: %v", err)
	}
}

func TestInjectorStuckServesStaleCache(t *testing.T) {
	plan := Plan{Seed: 1, Stuck: 1.0, StuckFor: time.Second}
	fake := newFake()
	j := Wrap(fake, plan, "a", 0)
	first, err := j.CollectInto(nil, 0)
	if err != nil {
		t.Fatalf("first poll: %v", err)
	}
	want := first[0]
	// Every subsequent poll inside the window must serve the cached reading
	// with its original timestamp, without touching the backend.
	backendPolls := fake.polls
	got, err := j.CollectInto(nil, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("stuck poll: %v", err)
	}
	if got[0] != want {
		t.Fatalf("stuck poll served fresh data: %+v != %+v", got[0], want)
	}
	if fake.polls != backendPolls {
		t.Fatal("stuck poll reached the backend")
	}
	if j.Counters().StuckPolls == 0 {
		t.Fatal("stuck polls not counted")
	}
	// Past the window the backend answers again (and immediately re-sticks,
	// since Stuck=1, but the reading itself is fresh).
	got, err = j.CollectInto(nil, 1200*time.Millisecond)
	if err != nil {
		t.Fatalf("post-window poll: %v", err)
	}
	if got[0] == want {
		t.Fatal("post-window poll still served the stale reading")
	}
}

func TestInjectorSpikeCost(t *testing.T) {
	plan := Plan{Seed: 5, Spike: 1.0, SpikeFactor: 20}
	fake := newFake()
	j := Wrap(fake, plan, "a", 0)
	if _, err := j.CollectInto(nil, 0); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if want := 20 * fake.cost; j.Cost() != want {
		t.Fatalf("spiked cost %v, want %v", j.Cost(), want)
	}
	if j.Counters().Spikes != 1 {
		t.Fatalf("spikes = %d, want 1", j.Counters().Spikes)
	}
}

func TestDecorate(t *testing.T) {
	reg := core.NewRegistry()
	key := core.BackendKey{Platform: core.NVML, Method: "NVML"}
	reg.Register(key, func(target any) (core.Collector, error) {
		return newFake(), nil
	})

	if got := Decorate(reg, Plan{Seed: 1}); got != reg {
		t.Fatal("inert plan must return base registry unchanged")
	}

	plan := Plan{Seed: 1, Lose: []Loss{{Method: "NVML", Instance: 1, At: time.Second}}}
	dec := Decorate(reg, plan)
	var cols []*Injector
	for i := 0; i < 3; i++ {
		col, err := dec.Build(key, nil)
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		inj, ok := col.(*Injector)
		if !ok {
			t.Fatalf("build %d returned %T, want *Injector", i, col)
		}
		if inj.Method() != "NVML" || inj.Platform() != core.NVML {
			t.Fatalf("injector does not mirror wrapped collector: %s/%s", inj.Platform(), inj.Method())
		}
		cols = append(cols, inj)
	}
	// Only the second build (instance 1) is scheduled for loss.
	for i, inj := range cols {
		_, err := inj.CollectInto(nil, 2*time.Second)
		if lost := errors.Is(err, ErrDeviceLost); lost != (i == 1) {
			t.Fatalf("instance %d lost=%v, want %v (err=%v)", i, lost, i == 1, err)
		}
	}
}
