package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses the -faults flag syntax: comma-separated key=value
// pairs.
//
//	seed=7                     draw-stream seed (defaults to the caller's)
//	transient=0.1              per-poll transient error probability
//	spike=0.05                 per-poll latency-spike probability
//	spikefactor=20             spike cost multiplier (default 10)
//	stuck=0.01                 per-poll stuck-window entry probability
//	stuckfor=2s                stuck-window length (default 1s)
//	flap=30s                   alternate up/down windows of this length
//	lose=NVML@30s              lose the first NVML collector at t=30s
//	lose=NVML#2@30s            lose the third NVML collector instead
//	lose=NVML#*@30s            lose every NVML collector
//	lose=SysMgmt API@5s-20s    loss that heals at t=20s
//
// The lose key may repeat. An empty spec returns the zero (inert) plan.
func ParsePlan(spec string, defaultSeed uint64) (Plan, error) {
	plan := Plan{Seed: defaultSeed}
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return Plan{}, fmt.Errorf("faults: bad plan entry %q (want key=value)", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseUint(val, 10, 64)
		case "transient":
			plan.Transient, err = strconv.ParseFloat(val, 64)
		case "spike":
			plan.Spike, err = strconv.ParseFloat(val, 64)
		case "spikefactor":
			plan.SpikeFactor, err = strconv.ParseFloat(val, 64)
		case "stuck":
			plan.Stuck, err = strconv.ParseFloat(val, 64)
		case "stuckfor":
			plan.StuckFor, err = time.ParseDuration(val)
		case "flap":
			plan.Flap, err = time.ParseDuration(val)
		case "lose":
			var loss Loss
			loss, err = parseLoss(val)
			plan.Lose = append(plan.Lose, loss)
		default:
			return Plan{}, fmt.Errorf("faults: unknown plan key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad %s value %q: %w", key, val, err)
		}
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// parseLoss parses "method[#instance]@at[-until]".
func parseLoss(val string) (Loss, error) {
	method, window, found := strings.Cut(val, "@")
	if !found {
		return Loss{}, fmt.Errorf("want method@time")
	}
	loss := Loss{Method: method}
	if m, inst, hasInst := strings.Cut(method, "#"); hasInst {
		loss.Method = m
		if inst == "*" {
			loss.Instance = -1
		} else {
			n, err := strconv.Atoi(inst)
			if err != nil || n < 0 {
				return Loss{}, fmt.Errorf("bad instance %q", inst)
			}
			loss.Instance = n
		}
	}
	at, until, hasUntil := strings.Cut(window, "-")
	var err error
	if loss.At, err = time.ParseDuration(at); err != nil {
		return Loss{}, err
	}
	if hasUntil {
		if loss.Until, err = time.ParseDuration(until); err != nil {
			return Loss{}, err
		}
	}
	return loss, nil
}

// String renders the plan back in ParsePlan syntax (loss instances and
// defaults included only when set), for logs and /healthz.
func (p Plan) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	add("seed=%d", p.Seed)
	if p.Transient > 0 {
		add("transient=%g", p.Transient)
	}
	if p.Spike > 0 {
		add("spike=%g", p.Spike)
		if p.SpikeFactor >= 1 {
			add("spikefactor=%g", p.SpikeFactor)
		}
	}
	if p.Stuck > 0 {
		add("stuck=%g", p.Stuck)
		if p.StuckFor > 0 {
			add("stuckfor=%s", p.StuckFor)
		}
	}
	if p.Flap > 0 {
		add("flap=%s", p.Flap)
	}
	for _, l := range p.Lose {
		m := l.Method
		if l.Instance < 0 {
			m += "#*"
		} else if l.Instance > 0 {
			m += "#" + strconv.Itoa(l.Instance)
		}
		if l.Until > 0 {
			add("lose=%s@%s-%s", m, l.At, l.Until)
		} else {
			add("lose=%s@%s", m, l.At)
		}
	}
	return strings.Join(parts, ",")
}
