package faults

import (
	"fmt"
	"sync"

	"envmon/internal/core"
)

// Decorate returns a registry that builds base's collectors wrapped with
// injectors for the plan — the switch that turns a healthy machine into a
// faulty one without touching any call site. Binaries enable it behind a
// -faults flag:
//
//	plan, _ := faults.ParsePlan(*faultsFlag, *seed)
//	reg := faults.Decorate(core.DefaultRegistry, plan)
//	// pass reg wherever a *core.Registry goes
//
// Each built collector gets its own draw stream labeled
// "<platform>/<method>#<instance>", where instance counts builds of that
// backend key. Collector construction order is deterministic (nodes are
// assembled before any clock advances), so the labels — and therefore the
// injected faults — replay identically at any shard or worker count.
//
// An inert plan returns base unchanged.
func Decorate(base *core.Registry, plan Plan) *core.Registry {
	if !plan.Enabled() {
		return base
	}
	out := core.NewRegistry()
	for _, key := range base.Keys() {
		key := key
		var mu sync.Mutex
		instances := 0
		out.Register(key, func(target any) (core.Collector, error) {
			col, err := base.Build(key, target)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			instance := instances
			instances++
			mu.Unlock()
			return Wrap(col, plan, fmt.Sprintf("%s#%d", key, instance), instance), nil
		})
	}
	return out
}
