package rapl

import (
	"fmt"
	"time"

	"envmon/internal/core"
	"envmon/internal/msr"
)

// componentFor maps a RAPL plane to the Table I component taxonomy.
func componentFor(d Domain) core.Component {
	switch d {
	case PKG:
		return core.Total
	case PP0:
		return core.Processor
	case PP1:
		return core.Board
	case DRAM:
		return core.MainMemory
	default:
		return core.Total
	}
}

// MSRCollector reads RAPL through an open /dev/cpu/*/msr handle — the
// userspace path the paper uses ("short of having a supported kernel the
// only way ... is to use the Linux MSR driver").
//
// The collector decodes MSR_RAPL_POWER_UNIT once, then on each Collect
// reads all four energy-status counters, derives joules from the 32-bit
// counter delta (handling a single wraparound — more than one wrap between
// reads is undetectable and silently undercounts, the "erroneous data" the
// paper warns about at >60 s sampling), and derives watts from
// joules/elapsed.
type MSRCollector struct {
	dev        *msr.Device
	energyUnit float64
	last       [NumDomains]struct {
		counter uint32
		at      time.Duration
		valid   bool
	}
	queries int
}

// NewMSRCollector decodes the unit register and returns a ready collector.
func NewMSRCollector(dev *msr.Device, now time.Duration) (*MSRCollector, error) {
	raw, err := dev.Read(msr.RAPLPowerUnit, now)
	if err != nil {
		return nil, fmt.Errorf("rapl: reading unit register: %w", err)
	}
	_, energyJ, _ := DecodeUnits(raw)
	return &MSRCollector{dev: dev, energyUnit: energyJ}, nil
}

// statusAddr maps a domain to its energy status MSR.
func statusAddr(d Domain) msr.Address {
	switch d {
	case PKG:
		return msr.PkgEnergyStatus
	case PP0:
		return msr.PP0EnergyStatus
	case PP1:
		return msr.PP1EnergyStatus
	case DRAM:
		return msr.DRAMEnergyStatus
	default:
		panic("rapl: bad domain")
	}
}

// Platform implements core.Collector.
func (c *MSRCollector) Platform() core.Platform { return core.RAPL }

// Method implements core.Collector.
func (c *MSRCollector) Method() string { return "MSR" }

// Cost implements core.Collector: ~0.03 ms per query (paper, II.B).
func (c *MSRCollector) Cost() time.Duration { return msr.ReadCost }

// MinInterval implements core.Collector: the paper concludes RAPL is
// "relatively accurate for data collection at about 60ms"; faster polling
// aliases the jittered counter updates.
func (c *MSRCollector) MinInterval() time.Duration { return 60 * time.Millisecond }

// Queries reports how many Collect calls have been made.
func (c *MSRCollector) Queries() int { return c.queries }

// Collect implements core.Collector. Each domain yields an Energy reading
// (cumulative joules since the collector's first sight of the counter) and,
// from the second collection on, a Power reading derived from the delta.
func (c *MSRCollector) Collect(now time.Duration) ([]core.Reading, error) {
	return c.CollectInto(nil, now)
}

// CollectInto implements core.BatchCollector: same readings as Collect,
// appended to buf[:0] so a steady-state poll loop allocates nothing.
func (c *MSRCollector) CollectInto(buf []core.Reading, now time.Duration) ([]core.Reading, error) {
	c.queries++
	out := buf[:0]
	for _, d := range Domains() {
		raw, err := c.dev.Read(statusAddr(d), now)
		if err != nil {
			return buf[:0], fmt.Errorf("rapl: reading %s energy status: %w", d, err)
		}
		counter := uint32(raw)
		st := &c.last[d]
		if st.valid {
			delta := uint32(counter - st.counter) // modular: survives one wrap
			joules := float64(delta) * c.energyUnit
			dt := (now - st.at).Seconds()
			out = append(out, core.Reading{
				Cap:   core.Capability{Component: componentFor(d), Metric: core.Energy},
				Value: joules, Unit: "J", Time: now,
			})
			if dt > 0 {
				out = append(out, core.Reading{
					Cap:   core.Capability{Component: componentFor(d), Metric: core.Power},
					Value: joules / dt, Unit: "W", Time: now,
				})
			}
		}
		st.counter = counter
		st.at = now
		st.valid = true
	}
	return out, nil
}

// PerfReader is the perf_event kernel path (Linux >= 3.14). The kernel
// accumulates counter wraps into a 64-bit value, so wraparound is handled
// for the user; the price is a syscall per read. The paper could not
// measure this path ("we did not have ready access to a Linux machine
// running a new enough kernel") but expected it to be slower than raw MSR
// reads; we model the syscall + perf framework cost as 5x the MSR read
// (150 µs) and document the assumption in EXPERIMENTS.md.
type PerfReader struct {
	socket *Socket
	base   [NumDomains]float64
	last   [NumDomains]struct {
		joules float64
		at     time.Duration
		valid  bool
	}
	queries int
}

// PerfReadCost is the modeled per-query latency of the perf_event path.
const PerfReadCost = 150 * time.Microsecond

// NewPerfReader opens the perf-style reader on a socket at simulated time
// now; like a real perf event, the counter reads zero at open.
func NewPerfReader(s *Socket, now time.Duration) *PerfReader {
	p := &PerfReader{socket: s}
	for _, d := range Domains() {
		p.base[d] = s.EnergyJoules(d, now)
	}
	return p
}

// Platform implements core.Collector.
func (p *PerfReader) Platform() core.Platform { return core.RAPL }

// Method implements core.Collector.
func (p *PerfReader) Method() string { return "perf" }

// Cost implements core.Collector.
func (p *PerfReader) Cost() time.Duration { return PerfReadCost }

// MinInterval implements core.Collector (same counter cadence as the MSR
// path).
func (p *PerfReader) MinInterval() time.Duration { return 60 * time.Millisecond }

// Queries reports how many Collect calls have been made.
func (p *PerfReader) Queries() int { return p.queries }

// EnergyJoules reads a domain's cumulative energy since the reader was
// opened, free of wraparound (the kernel folds wraps into 64 bits).
func (p *PerfReader) EnergyJoules(d Domain, now time.Duration) float64 {
	return p.socket.EnergyJoules(d, now) - p.base[d]
}

// Collect implements core.Collector with the same reading layout as the
// MSR path.
func (p *PerfReader) Collect(now time.Duration) ([]core.Reading, error) {
	return p.CollectInto(nil, now)
}

// CollectInto implements core.BatchCollector.
func (p *PerfReader) CollectInto(buf []core.Reading, now time.Duration) ([]core.Reading, error) {
	p.queries++
	out := buf[:0]
	for _, d := range Domains() {
		j := p.EnergyJoules(d, now)
		st := &p.last[d]
		if st.valid {
			dj := j - st.joules
			dt := (now - st.at).Seconds()
			out = append(out, core.Reading{
				Cap:   core.Capability{Component: componentFor(d), Metric: core.Energy},
				Value: dj, Unit: "J", Time: now,
			})
			if dt > 0 {
				out = append(out, core.Reading{
					Cap:   core.Capability{Component: componentFor(d), Metric: core.Power},
					Value: dj / dt, Unit: "W", Time: now,
				})
			}
		}
		st.joules = j
		st.at = now
		st.valid = true
	}
	return out, nil
}
