// Package rapl simulates Intel's Running Average Power Limit interface
// (paper Section II.B) on top of the internal/msr register file.
//
// Fidelity points reproduced from the paper and the Intel SDM:
//
//   - RAPL reports *energy*, not power: each domain has a 32-bit energy
//     status counter in units given by MSR_RAPL_POWER_UNIT (default
//     2^-16 J ≈ 15.3 µJ). Software derives watts from counter deltas.
//   - The counter updates on a ~1 ms cadence with a jittered boundary (the
//     paper: "updates happening within the range of ±50,000 cycles ...
//     relatively accurate for data collection at about 60 ms").
//   - The counter wraps: "these registers can 'overfill' if they are not
//     read frequently enough", producing erroneous data at long sampling
//     intervals. We model the 32-bit wrap exactly.
//   - Scope is the whole socket: "it's not possible to collect data for
//     individual cores", and DRAM is summed across channels.
//   - Power limiting (the interface's design goal) is enforced: an enabled
//     PKG/DRAM limit clamps that domain's physical draw.
package rapl

import (
	"fmt"
	"math"
	"sync"
	"time"

	"envmon/internal/msr"
	"envmon/internal/power"
	"envmon/internal/simrand"
	"envmon/internal/workload"
)

// Domain is a RAPL power plane (the rows of the paper's Table II).
type Domain int

const (
	PKG Domain = iota
	PP0
	PP1
	DRAM
	NumDomains = 4
)

var domainNames = [NumDomains]string{"PKG", "PP0", "PP1", "DRAM"}

func (d Domain) String() string {
	if d < 0 || d >= NumDomains {
		return fmt.Sprintf("Domain(%d)", int(d))
	}
	return domainNames[d]
}

// Domains lists the planes in Table II order.
func Domains() []Domain { return []Domain{PKG, PP0, PP1, DRAM} }

// Table II of the paper: domain descriptions.
var domainDescriptions = [NumDomains]string{
	PKG:  "Whole CPU package.",
	PP0:  "Processor cores.",
	PP1:  "The power plane of a specific device in the uncore (such as a integrated GPU–not useful in server platforms).",
	DRAM: "Sum of socket's DIMM power(s).",
}

// Description returns the paper's Table II text for the domain.
func (d Domain) Description() string { return domainDescriptions[d] }

// DomainInfo is one row of Table II.
type DomainInfo struct {
	Domain      Domain
	Name        string
	Description string
}

// Table2 returns the paper's Table II.
func Table2() []DomainInfo {
	out := make([]DomainInfo, 0, NumDomains)
	for _, d := range Domains() {
		out = append(out, DomainInfo{Domain: d, Name: d.String(), Description: d.Description()})
	}
	return out
}

// Unit-register encoding: real Sandy Bridge parts report
// MSR_RAPL_POWER_UNIT = 0xA1003 — power unit 2^-3 W, energy unit 2^-16 J
// (15.3 µJ), time unit 2^-10 s (976 µs).
const (
	unitRegisterValue = 0xA1003

	// EnergyUnit is 2^-16 J ≈ 15.3 µJ (Sandy Bridge energy status unit).
	EnergyUnit = 1.0 / (1 << 16)
	// PowerUnit is 1/8 W (for the power-limit register fields).
	PowerUnit = 0.125

	// UpdatePeriod is the counter refresh cadence.
	UpdatePeriod = time.Millisecond
	// UpdateJitter bounds the refresh boundary jitter: ±50,000 cycles at
	// ~2.6 GHz is about ±19 µs.
	UpdateJitter = 19 * time.Microsecond

	// CounterWrap is the modulus of the 32-bit energy status counter.
	CounterWrap = uint64(1) << 32
)

// WrapTime reports how long the counter takes to wrap at a constant draw —
// the longest safe sampling interval at that power.
func WrapTime(watts float64) time.Duration {
	if watts <= 0 {
		return time.Duration(math.MaxInt64)
	}
	seconds := float64(CounterWrap) * EnergyUnit / watts
	return time.Duration(seconds * float64(time.Second))
}

// Config describes a simulated socket.
type Config struct {
	Name string
	Seed uint64
	// Cores is the logical processor count exposed as /dev/cpu/*/msr
	// device nodes (all sharing the socket's register file).
	Cores int
	// UpdatePeriod overrides the counter refresh cadence (and the energy
	// integration grid). Zero means the 1 ms default. The Xeon Phi's
	// internal RAPL uses a coarser period.
	UpdatePeriod time.Duration
	// Models overrides the per-plane power models (must have NumDomains
	// entries when non-nil). The default is a Sandy Bridge desktop
	// calibration; the Xeon Phi's internal RAPL supplies its own.
	Models []power.DomainModel
	// DeviceSide marks a coprocessor socket: host-side (HostCPU) workload
	// activity does not land on its cores. A plain host socket folds
	// HostCPU activity into Compute.
	DeviceSide bool
}

type limitState struct {
	raw     uint64 // register image
	watts   float64
	enabled bool
	locked  bool
}

type integState struct {
	nextCell int64   // first grid cell not yet integrated
	joules   float64 // accumulated energy over [0, nextCell*period)
}

// Socket is a simulated CPU socket with RAPL.
type Socket struct {
	mu     sync.Mutex
	name   string
	seed   uint64
	period time.Duration
	models [NumDomains]power.DomainModel
	integ  [NumDomains]integState
	limits [NumDomains]limitState

	job        workload.Workload
	jobStart   time.Duration
	deviceSide bool

	regs *msr.RegisterFile
}

// NewSocket builds a socket calibrated to the paper's Figure 3 magnitudes
// (Gaussian elimination on the whole package: ~12 W idle, ~50 W loaded)
// and installs its RAPL MSRs into a fresh register file.
func NewSocket(cfg Config) *Socket {
	if cfg.Name == "" {
		cfg.Name = "socket0"
	}
	period := cfg.UpdatePeriod
	if period <= 0 {
		period = UpdatePeriod
	}
	s := &Socket{
		name:   cfg.Name,
		seed:   simrand.New(cfg.Seed).Split("rapl-" + cfg.Name).Uint64(),
		period: period,
		models: [NumDomains]power.DomainModel{
			PKG:  {Name: "PKG", IdleW: 10, DynamicW: 45, WCompute: 0.75, WMemory: 0.25, WHostCPU: 0, NoiseFrac: 0.01},
			PP0:  {Name: "PP0", IdleW: 4, DynamicW: 35, WCompute: 1, NoiseFrac: 0.012},
			PP1:  {Name: "PP1", IdleW: 0.5, DynamicW: 0, NoiseFrac: 0.02},
			DRAM: {Name: "DRAM", IdleW: 2.5, DynamicW: 12, WMemory: 1, NoiseFrac: 0.012},
		},
		regs: msr.NewRegisterFile(),
	}
	s.deviceSide = cfg.DeviceSide
	if cfg.Models != nil {
		if len(cfg.Models) != NumDomains {
			panic(fmt.Sprintf("rapl: Config.Models has %d entries, need %d", len(cfg.Models), NumDomains))
		}
		copy(s.models[:], cfg.Models)
	}
	s.installRegisters()
	return s
}

// Name reports the socket name.
func (s *Socket) Name() string { return s.name }

// Registers exposes the socket's MSR register file (shared by all its
// logical processors).
func (s *Socket) Registers() *msr.RegisterFile { return s.regs }

// Driver builds a loaded-by-default=false msr driver exposing cores device
// nodes that all map to this socket's register file.
func (s *Socket) Driver(cores int) *msr.Driver {
	if cores <= 0 {
		cores = 1
	}
	files := make(map[int]*msr.RegisterFile, cores)
	for i := 0; i < cores; i++ {
		files[i] = s.regs
	}
	return msr.NewDriver(files)
}

// Run assigns a workload starting at the given simulated time.
func (s *Socket) Run(w workload.Workload, start time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.job = w
	s.jobStart = start
}

// activityAt reports workload activity; callers hold s.mu.
func (s *Socket) activityAt(t time.Duration) workload.Activity {
	if s.job == nil {
		return workload.Activity{}
	}
	a := s.job.ActivityAt(t - s.jobStart)
	// On a plain host socket, host-CPU activity of accelerator workloads
	// lands on the cores; a device-side socket (coprocessor) ignores it.
	if !s.deviceSide && a.HostCPU > a.Compute {
		a.Compute = a.HostCPU
	}
	return a
}

// cellPower computes the physical draw of domain d during grid cell i,
// with deterministic per-cell noise and power-limit clamping. Callers hold
// s.mu.
func (s *Socket) cellPower(d Domain, cell int64) float64 {
	mid := time.Duration(cell)*s.period + s.period/2
	rng := simrand.New(s.seed ^ uint64(d)<<58 ^ uint64(cell))
	w := s.models[d].Power(s.activityAt(mid), rng)
	if lim := s.limits[d]; lim.enabled && w > lim.watts {
		w = lim.watts
	}
	return w
}

// integrateTo advances domain d's energy accumulator so it covers
// [0, cell*period). Callers hold s.mu.
func (s *Socket) integrateTo(d Domain, cell int64) {
	st := &s.integ[d]
	dt := s.period.Seconds()
	for c := st.nextCell; c < cell; c++ {
		st.joules += s.cellPower(d, c) * dt
	}
	if cell > st.nextCell {
		st.nextCell = cell
	}
}

// visibleCell reports the last counter update boundary at or before t,
// including the per-update jitter ("±50,000 cycles").
func (s *Socket) visibleCell(t time.Duration) int64 {
	if t < 0 {
		return 0
	}
	c := int64(t / s.period)
	if c == 0 {
		return 0
	}
	// boundary of cell c occurs at c*period + jitter(c)
	jit := time.Duration(simrand.New(s.seed^uint64(c)*0x9E3779B9).Uniform(
		-float64(UpdateJitter), float64(UpdateJitter)))
	if t < time.Duration(c)*s.period+jit {
		c--
	}
	return c
}

// EnergyJoules reports the energy the counter exposes at simulated time t:
// the integral of the domain's power over [0, u(t)) where u is the last
// (jittered) update boundary. Reads must use non-decreasing t; earlier
// times return the already-integrated value.
func (s *Socket) EnergyJoules(d Domain, t time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cell := s.visibleCell(t)
	// If t precedes already-integrated state, integrateTo is a no-op and we
	// serve the stored accumulator: hardware counters never run backwards.
	s.integrateTo(d, cell)
	return s.integ[d].joules
}

// Counter reports the 32-bit energy status counter value at time t.
func (s *Socket) Counter(d Domain, t time.Duration) uint32 {
	units := uint64(s.EnergyJoules(d, t) / EnergyUnit)
	return uint32(units % CounterWrap)
}

// TruePower reports the instantaneous noiseless draw of a domain — ground
// truth for tests, not observable through the vendor interface.
func (s *Socket) TruePower(d Domain, t time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.models[d].Power(s.activityAt(t), nil)
	if lim := s.limits[d]; lim.enabled && w > lim.watts {
		w = lim.watts
	}
	return w
}

// --- Power limits -----------------------------------------------------------

// limit register layout (simplified SDM fields we honor):
//
//	bits 14:0  power limit, in PowerUnit steps
//	bit  15    enable
//	bit  63    lock (further writes fault until reset)
const (
	limitMask = 0x7FFF
	enableBit = 1 << 15
	lockBit   = uint64(1) << 63
)

// SetPowerLimit programs and enables a power limit on a domain (PKG and
// DRAM are limitable; PP0/PP1 accept the write but we also honor it).
func (s *Socket) SetPowerLimit(d Domain, watts float64) error {
	return s.SetPowerLimitAt(d, 0, watts)
}

// SetPowerLimitAt programs a limit effective from the given simulated
// time: energy already accrued is flushed under the old limit first, so a
// closed-loop controller re-programming caps mid-run never rewrites the
// history a collector may not have read yet. now must not precede earlier
// reads or limit writes on this socket (reads are non-decreasing per node
// by contract).
func (s *Socket) SetPowerLimitAt(d Domain, now time.Duration, watts float64) error {
	raw := uint64(watts/PowerUnit) & limitMask
	return s.writeLimit(d, now, raw|enableBit)
}

// ClearPowerLimit disables the limit.
func (s *Socket) ClearPowerLimit(d Domain) error { return s.writeLimit(d, 0, 0) }

// PowerLimit reports the programmed limit and whether it is enabled.
func (s *Socket) PowerLimit(d Domain) (watts float64, enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limits[d].watts, s.limits[d].enabled
}

// writeLimit is the register-write path used both by the API above and the
// MSR interface.
func (s *Socket) writeLimit(d Domain, now time.Duration, raw uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limits[d].locked {
		return fmt.Errorf("rapl: %s power limit register is locked", d)
	}
	// A limit change alters physical power from now on; flush the energy
	// integral up to the current instant first so past cells keep the old
	// limit. (Register writes carry their simulated time.)
	s.integrateTo(d, int64(now/s.period))
	s.limits[d].raw = raw
	s.limits[d].watts = float64(raw&limitMask) * PowerUnit
	s.limits[d].enabled = raw&enableBit != 0
	s.limits[d].locked = raw&lockBit != 0
	return nil
}

func (s *Socket) readLimit(d Domain) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limits[d].raw
}

// --- MSR wiring ---------------------------------------------------------------

// limitRegister adapts a domain's limit state to the msr.Register interface.
type limitRegister struct {
	s *Socket
	d Domain
}

func (r limitRegister) Read(time.Duration) (uint64, error) { return r.s.readLimit(r.d), nil }
func (r limitRegister) Write(now time.Duration, v uint64) error {
	return r.s.writeLimit(r.d, now, v)
}

// installRegisters binds the RAPL MSRs.
func (s *Socket) installRegisters() {
	s.regs.Install(msr.RAPLPowerUnit, msr.ReadOnly{R: msr.NewStatic(unitRegisterValue)})
	status := map[msr.Address]Domain{
		msr.PkgEnergyStatus:  PKG,
		msr.PP0EnergyStatus:  PP0,
		msr.PP1EnergyStatus:  PP1,
		msr.DRAMEnergyStatus: DRAM,
	}
	for addr, d := range status {
		dom := d
		s.regs.Install(addr, msr.Func(func(now time.Duration) uint64 {
			return uint64(s.Counter(dom, now))
		}))
	}
	s.regs.Install(msr.PkgPowerLimit, limitRegister{s, PKG})
	s.regs.Install(msr.PP0PowerLimit, limitRegister{s, PP0})
	s.regs.Install(msr.PP1PowerLimit, limitRegister{s, PP1})
	s.regs.Install(msr.DRAMPowerLimit, limitRegister{s, DRAM})
}

// DecodeUnits parses an MSR_RAPL_POWER_UNIT value into (power, energy,
// time) units, as client software must.
func DecodeUnits(raw uint64) (powerW, energyJ, timeS float64) {
	powerW = 1.0 / float64(uint64(1)<<(raw&0xF))
	energyJ = 1.0 / float64(uint64(1)<<((raw>>8)&0x1F))
	timeS = 1.0 / float64(uint64(1)<<((raw>>16)&0xF))
	return powerW, energyJ, timeS
}
