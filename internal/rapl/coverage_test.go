package rapl

import (
	"testing"
	"time"

	"envmon/internal/core"
	"envmon/internal/msr"
	"envmon/internal/power"
	"envmon/internal/workload"
)

func TestSocketNameAndDefaults(t *testing.T) {
	s := NewSocket(Config{Seed: 1}) // no name
	if s.Name() != "socket0" {
		t.Errorf("default name = %q", s.Name())
	}
	s2 := NewSocket(Config{Name: "cpu7", Seed: 1})
	if s2.Name() != "cpu7" {
		t.Errorf("Name = %q", s2.Name())
	}
	// zero-core driver clamps to one device node
	drv := s.Driver(0)
	drv.Load()
	if _, err := drv.Open(0, msr.Root); err != nil {
		t.Fatal(err)
	}
}

func TestCustomModelsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length Models accepted")
		}
	}()
	NewSocket(Config{Seed: 1, Models: []power.DomainModel{{Name: "only-one"}}})
}

func TestTruePower(t *testing.T) {
	s := NewSocket(Config{Name: "tp", Seed: 3})
	if got := s.TruePower(PKG, time.Second); got != 10 {
		t.Errorf("idle TruePower = %v, want exactly 10 (noiseless)", got)
	}
	s.Run(workload.FixedRuntime(time.Minute), 0)
	loaded := s.TruePower(PKG, 30*time.Second)
	if loaded <= 10 {
		t.Errorf("loaded TruePower = %v", loaded)
	}
	// limit clamps TruePower too
	if err := s.SetPowerLimit(PKG, 15); err != nil {
		t.Fatal(err)
	}
	if got := s.TruePower(PKG, 31*time.Second); got != 15 {
		t.Errorf("limited TruePower = %v, want 15", got)
	}
}

func TestCollectorMinIntervals(t *testing.T) {
	s := NewSocket(Config{Name: "mi", Seed: 1})
	drv := s.Driver(1)
	drv.Load()
	dev, err := drv.Open(0, msr.Root)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewMSRCollector(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if col.MinInterval() != 60*time.Millisecond {
		t.Errorf("MSR MinInterval = %v", col.MinInterval())
	}
	p := NewPerfReader(s, 0)
	if p.MinInterval() != 60*time.Millisecond {
		t.Errorf("perf MinInterval = %v", p.MinInterval())
	}
	if p.Platform() != core.RAPL {
		t.Errorf("perf Platform = %v", p.Platform())
	}
}
