package rapl

import (
	"fmt"
	"time"

	"envmon/internal/core"
	"envmon/internal/msr"
)

// MSRTarget opens the Linux MSR driver path on a socket at a specific
// simulated time; passing a *Socket directly opens at time zero.
type MSRTarget struct {
	Socket *Socket
	Now    time.Duration
}

// PerfTarget opens the perf_event path on a socket at a specific simulated
// time; passing a *Socket directly opens at time zero.
type PerfTarget struct {
	Socket *Socket
	Now    time.Duration
}

func init() {
	core.Register(core.BackendKey{Platform: core.RAPL, Method: "MSR"}, func(target any) (core.Collector, error) {
		switch t := target.(type) {
		case *msr.Device:
			return NewMSRCollector(t, 0)
		case *Socket:
			return openMSR(t, 0)
		case MSRTarget:
			return openMSR(t.Socket, t.Now)
		default:
			return nil, fmt.Errorf("%w: RAPL/MSR wants *msr.Device, *rapl.Socket, or rapl.MSRTarget, got %T", core.ErrBadTarget, target)
		}
	})
	core.Register(core.BackendKey{Platform: core.RAPL, Method: "perf"}, func(target any) (core.Collector, error) {
		switch t := target.(type) {
		case *Socket:
			return NewPerfReader(t, 0), nil
		case PerfTarget:
			return NewPerfReader(t.Socket, t.Now), nil
		default:
			return nil, fmt.Errorf("%w: RAPL/perf wants *rapl.Socket or rapl.PerfTarget, got %T", core.ErrBadTarget, target)
		}
	})
}

// openMSR loads the MSR driver on the socket, opens cpu 0 as root, and
// decodes the unit register — the stack every call site used to assemble
// by hand.
func openMSR(s *Socket, now time.Duration) (*MSRCollector, error) {
	drv := s.Driver(1)
	drv.Load()
	dev, err := drv.Open(0, msr.Root)
	if err != nil {
		return nil, err
	}
	return NewMSRCollector(dev, now)
}
