package rapl_test

import (
	"fmt"
	"time"

	"envmon/internal/msr"
	"envmon/internal/rapl"
	"envmon/internal/workload"
)

// Example shows the userspace RAPL collection flow the paper describes:
// load the msr driver, open /dev/cpu/0/msr, decode the unit register, and
// derive watts from energy-counter deltas.
func Example() {
	socket := rapl.NewSocket(rapl.Config{Name: "socket0", Seed: 42})
	socket.Run(workload.GaussElim(60*time.Second), 0)

	driver := socket.Driver(8) // 8 logical CPUs share the socket's MSRs
	driver.Load()              // modprobe msr
	dev, err := driver.Open(0, msr.Root)
	if err != nil {
		panic(err)
	}

	raw, _ := dev.Read(msr.RAPLPowerUnit, 0)
	_, energyUnit, _ := rapl.DecodeUnits(raw)
	fmt.Printf("energy unit: %.1f uJ\n", energyUnit*1e6)

	// watts = delta(counter) * unit / delta(t)
	c0, _ := dev.Read(msr.PkgEnergyStatus, 10*time.Second)
	c1, _ := dev.Read(msr.PkgEnergyStatus, 20*time.Second)
	joules := float64(uint32(c1)-uint32(c0)) * energyUnit
	fmt.Printf("package power: %.0f W\n", joules/10)
	// Output:
	// energy unit: 15.3 uJ
	// package power: 47 W
}

// ExampleSocket_SetPowerLimit shows RAPL's design purpose: capping power.
func ExampleSocket_SetPowerLimit() {
	socket := rapl.NewSocket(rapl.Config{Name: "socket0", Seed: 42})
	socket.Run(workload.GaussElim(5*time.Minute), 0)

	if err := socket.SetPowerLimit(rapl.PKG, 30); err != nil {
		panic(err)
	}
	j0 := socket.EnergyJoules(rapl.PKG, 60*time.Second)
	j1 := socket.EnergyJoules(rapl.PKG, 120*time.Second)
	fmt.Printf("capped package power: %.0f W\n", (j1-j0)/60)
	// Output:
	// capped package power: 30 W
}
