package rapl

import (
	"math"
	"testing"
	"time"

	"envmon/internal/msr"
	"envmon/internal/workload"
)

func newIdleSocket() *Socket {
	return NewSocket(Config{Name: "s0", Seed: 42})
}

func newGaussSocket() *Socket {
	s := NewSocket(Config{Name: "s0", Seed: 42})
	s.Run(workload.GaussElim(60*time.Second), 10*time.Second)
	return s
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("Table2 rows = %d, want 4", len(rows))
	}
	if rows[0].Name != "PKG" || rows[0].Description != "Whole CPU package." {
		t.Errorf("PKG row = %+v", rows[0])
	}
	if rows[3].Name != "DRAM" || rows[3].Description != "Sum of socket's DIMM power(s)." {
		t.Errorf("DRAM row = %+v", rows[3])
	}
}

func TestDomainStrings(t *testing.T) {
	if PKG.String() != "PKG" || DRAM.String() != "DRAM" || Domain(9).String() != "Domain(9)" {
		t.Error("domain names wrong")
	}
}

func TestDecodeUnits(t *testing.T) {
	p, e, ts := DecodeUnits(0xA1003)
	if p != 0.125 {
		t.Errorf("power unit = %v, want 1/8", p)
	}
	if e != 1.0/65536 {
		t.Errorf("energy unit = %v, want 2^-16", e)
	}
	if ts != 1.0/1024 {
		t.Errorf("time unit = %v, want 2^-10", ts)
	}
}

func TestUnitRegisterWiredUp(t *testing.T) {
	s := newIdleSocket()
	v, err := s.Registers().Read(msr.RAPLPowerUnit, 0)
	if err != nil || v != 0xA1003 {
		t.Fatalf("unit register = %#x, %v", v, err)
	}
	if err := s.Registers().Write(msr.RAPLPowerUnit, 0, 1); err == nil {
		t.Fatal("unit register writable")
	}
}

func TestEnergyMonotone(t *testing.T) {
	s := newGaussSocket()
	var prev float64
	for ts := time.Duration(0); ts < 90*time.Second; ts += 700 * time.Millisecond {
		j := s.EnergyJoules(PKG, ts)
		if j < prev {
			t.Fatalf("energy decreased at %v: %v < %v", ts, j, prev)
		}
		prev = j
	}
	if prev == 0 {
		t.Fatal("no energy accumulated")
	}
}

func TestEnergyMatchesIdlePower(t *testing.T) {
	s := newIdleSocket()
	j := s.EnergyJoules(PKG, 100*time.Second)
	// idle PKG is 10 W -> ~1000 J over 100 s (within noise)
	if math.Abs(j-1000) > 20 {
		t.Errorf("idle PKG energy over 100s = %v J, want ~1000", j)
	}
}

func TestDerivedPowerMatchesWorkload(t *testing.T) {
	s := newGaussSocket()
	// Reads must be time-ordered (counters never run backwards), so sample
	// the idle window first.
	jIdle := s.EnergyJoules(PKG, 9*time.Second) / 9
	if jIdle < 8 || jIdle > 12 {
		t.Errorf("idle PKG power = %v W, want ~10", jIdle)
	}
	// power over the loaded window [20s, 60s]
	j0 := s.EnergyJoules(PKG, 20*time.Second)
	j1 := s.EnergyJoules(PKG, 60*time.Second)
	watts := (j1 - j0) / 40
	// gauss on the package model: ~10 + 45*(0.75*0.92+0.25*0.55) ~ 47 W
	if watts < 40 || watts > 56 {
		t.Errorf("loaded PKG power = %v W, want ~47 (Fig. 3 magnitude)", watts)
	}
}

func TestCounterQuantizedToUpdatePeriod(t *testing.T) {
	s := newIdleSocket()
	// Reads a few microseconds apart within one update period see the same
	// counter (stale until the next ~1 ms boundary).
	base := 50 * time.Millisecond
	c1 := s.Counter(PKG, base+100*time.Microsecond)
	c2 := s.Counter(PKG, base+200*time.Microsecond)
	if c1 != c2 {
		t.Errorf("counter changed within one update period: %d -> %d", c1, c2)
	}
	c3 := s.Counter(PKG, base+10*time.Millisecond)
	if c3 == c1 {
		t.Errorf("counter did not advance after 10 update periods")
	}
}

func TestCounterWraps(t *testing.T) {
	// The 32-bit counter wraps after CounterWrap*EnergyUnit joules
	// (~65.5 kJ). At idle-PKG 10 W that is ~6554 s. A coarse update grid
	// keeps the multi-hour integration cheap; wrap behavior is unchanged.
	s := NewSocket(Config{Name: "s0", Seed: 42, UpdatePeriod: 10 * time.Millisecond})
	wrapAt := WrapTime(10)
	if math.Abs(wrapAt.Seconds()-6553.6) > 100 {
		t.Fatalf("WrapTime(10W) = %v, want ~6554s", wrapAt)
	}
	before := s.Counter(PKG, wrapAt-30*time.Second)
	after := s.Counter(PKG, wrapAt+30*time.Second)
	if after >= before {
		t.Errorf("counter did not wrap: %d -> %d", before, after)
	}
	// modular delta still recovers the true energy across one wrap
	delta := uint32(after - before)
	joules := float64(delta) * EnergyUnit
	if math.Abs(joules-600) > 30 { // 60 s at ~10 W
		t.Errorf("post-wrap modular delta = %v J, want ~600", joules)
	}
}

func TestWrapTimeEdge(t *testing.T) {
	if WrapTime(0) <= 0 {
		t.Error("WrapTime(0) should be effectively infinite")
	}
	if wt := WrapTime(1000); wt > 2*time.Minute || wt < time.Minute {
		t.Errorf("WrapTime(1kW) = %v, want ~65s (the paper's ~60s warning)", wt)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint32 {
		s := NewSocket(Config{Name: "s0", Seed: 7})
		s.Run(workload.GaussElim(30*time.Second), 0)
		var vals []uint32
		for ts := time.Duration(0); ts < 30*time.Second; ts += 100 * time.Millisecond {
			vals = append(vals, s.Counter(PKG, ts))
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestReadPatternIndependence(t *testing.T) {
	// The same final energy regardless of how often it was read along the
	// way — integration must be grid-aligned, not read-aligned.
	mk := func() *Socket {
		s := NewSocket(Config{Name: "s0", Seed: 9})
		s.Run(workload.GaussElim(20*time.Second), 0)
		return s
	}
	a := mk()
	for ts := time.Duration(0); ts <= 25*time.Second; ts += 50 * time.Millisecond {
		a.EnergyJoules(PKG, ts)
	}
	ja := a.EnergyJoules(PKG, 25*time.Second)
	b := mk()
	jb := b.EnergyJoules(PKG, 25*time.Second)
	if ja != jb {
		t.Fatalf("read pattern changed energy: %v != %v", ja, jb)
	}
}

func TestPowerLimitEnforced(t *testing.T) {
	s := NewSocket(Config{Name: "s0", Seed: 11})
	s.Run(workload.GaussElim(5*time.Minute), 0)
	if err := s.SetPowerLimit(PKG, 30); err != nil {
		t.Fatal(err)
	}
	w, on := s.PowerLimit(PKG)
	if !on || w != 30 {
		t.Fatalf("PowerLimit = %v, %v", w, on)
	}
	j0 := s.EnergyJoules(PKG, 60*time.Second)
	j1 := s.EnergyJoules(PKG, 120*time.Second)
	watts := (j1 - j0) / 60
	if watts > 30.5 {
		t.Errorf("limited PKG drew %v W, cap was 30", watts)
	}
	if err := s.ClearPowerLimit(PKG); err != nil {
		t.Fatal(err)
	}
	j2 := s.EnergyJoules(PKG, 180*time.Second)
	unlimited := (j2 - j1) / 60
	if unlimited < 40 {
		t.Errorf("after clearing limit power = %v W, want ~47", unlimited)
	}
}

func TestPowerLimitViaMSR(t *testing.T) {
	s := newIdleSocket()
	// Program a 20 W limit through the register interface: 20/0.125 = 160.
	raw := uint64(160) | uint64(1)<<15
	if err := s.Registers().Write(msr.PkgPowerLimit, 0, raw); err != nil {
		t.Fatal(err)
	}
	w, on := s.PowerLimit(PKG)
	if !on || w != 20 {
		t.Fatalf("MSR-programmed limit = %v, %v", w, on)
	}
	got, err := s.Registers().Read(msr.PkgPowerLimit, 0)
	if err != nil || got != raw {
		t.Fatalf("limit register readback = %#x, %v", got, err)
	}
}

func TestPowerLimitLockBit(t *testing.T) {
	s := newIdleSocket()
	raw := uint64(160) | uint64(1)<<15 | uint64(1)<<63
	if err := s.Registers().Write(msr.PkgPowerLimit, 0, raw); err != nil {
		t.Fatal(err)
	}
	if err := s.Registers().Write(msr.PkgPowerLimit, 0, 0); err == nil {
		t.Fatal("write to locked limit register succeeded")
	}
}

func TestMSRCollectorEndToEnd(t *testing.T) {
	s := NewSocket(Config{Name: "s0", Seed: 3})
	s.Run(workload.GaussElim(60*time.Second), 10*time.Second)
	drv := s.Driver(4)
	drv.Load()
	dev, err := drv.Open(0, msr.Root)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewMSRCollector(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if col.Platform().String() != "RAPL" || col.Method() != "MSR" {
		t.Error("collector identity wrong")
	}
	if col.Cost() != msr.ReadCost {
		t.Errorf("Cost = %v", col.Cost())
	}

	// first collect: baselines only, no readings
	rs, err := col.Collect(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("first Collect returned %d readings, want 0", len(rs))
	}
	// second collect: 4 energy + 4 power readings
	rs, err = col.Collect(21 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("second Collect returned %d readings, want 8", len(rs))
	}
	var pkgPower float64
	for _, r := range rs {
		if r.Cap.Metric.String() == "Power" && r.Cap.Component.String() == "Total" {
			pkgPower = r.Value
		}
	}
	if pkgPower < 35 || pkgPower > 60 {
		t.Errorf("collector PKG power = %v W, want ~47", pkgPower)
	}
	if col.Queries() != 2 {
		t.Errorf("Queries = %d", col.Queries())
	}
}

func TestMSRCollectorSurvivesOneWrap(t *testing.T) {
	// 10 W PKG -> wrap at ~6554 s; coarse grid for speed
	s := NewSocket(Config{Name: "s0", Seed: 42, UpdatePeriod: 10 * time.Millisecond})
	drv := s.Driver(1)
	drv.Load()
	dev, _ := drv.Open(0, msr.Root)
	col, _ := NewMSRCollector(dev, 0)
	wrapAt := WrapTime(10)
	if _, err := col.Collect(wrapAt - 60*time.Second); err != nil {
		t.Fatal(err)
	}
	rs, err := col.Collect(wrapAt + 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Cap.Component.String() == "Total" && r.Cap.Metric.String() == "Power" {
			if r.Value < 8 || r.Value > 12 {
				t.Errorf("power across wrap = %v W, want ~10", r.Value)
			}
		}
	}
}

func TestMSRCollectorUndercountsAcrossTwoWraps(t *testing.T) {
	// Sampling slower than the wrap period silently undercounts — the
	// paper's "erroneous data" warning, reproduced.
	s := NewSocket(Config{Name: "s0", Seed: 42, UpdatePeriod: 10 * time.Millisecond})
	drv := s.Driver(1)
	drv.Load()
	dev, _ := drv.Open(0, msr.Root)
	col, _ := NewMSRCollector(dev, 0)
	wrapAt := WrapTime(10)
	if _, err := col.Collect(0); err != nil {
		t.Fatal(err)
	}
	rs, err := col.Collect(2*wrapAt + 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Cap.Component.String() == "Total" && r.Cap.Metric.String() == "Power" {
			if r.Value > 8 {
				t.Errorf("power across 2 wraps = %v W; expected gross undercount (<8)", r.Value)
			}
		}
	}
}

func TestPerfReaderNoWraparound(t *testing.T) {
	s := NewSocket(Config{Name: "s0", Seed: 42, UpdatePeriod: 10 * time.Millisecond})
	p := NewPerfReader(s, 0)
	if p.Method() != "perf" || p.Cost() != PerfReadCost {
		t.Error("perf reader identity wrong")
	}
	wrapAt := WrapTime(10)
	j := p.EnergyJoules(PKG, 2*wrapAt)
	// 2 wraps worth of time at ~10 W: energy must be ~2*65.5 kJ, NOT folded
	want := 10 * (2 * wrapAt.Seconds())
	if math.Abs(j-want) > want*0.05 {
		t.Errorf("perf energy = %v J, want ~%v (kernel accumulates wraps)", j, want)
	}
}

func TestPerfReaderCollect(t *testing.T) {
	s := NewSocket(Config{Name: "s0", Seed: 5})
	s.Run(workload.GaussElim(60*time.Second), 0)
	p := NewPerfReader(s, 0)
	if rs, _ := p.Collect(10 * time.Second); len(rs) != 0 {
		t.Fatalf("first perf Collect returned %d readings", len(rs))
	}
	rs, err := p.Collect(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("perf Collect returned %d readings, want 8", len(rs))
	}
	if p.Queries() != 2 {
		t.Errorf("Queries = %d", p.Queries())
	}
}

func TestPerfSlowerThanMSR(t *testing.T) {
	// The paper's expectation: "using the perf interface would result in
	// higher access times than reading the MSRs directly".
	if PerfReadCost <= msr.ReadCost {
		t.Errorf("perf cost %v <= MSR cost %v", PerfReadCost, msr.ReadCost)
	}
}

func TestSocketScopeNoPerCoreData(t *testing.T) {
	// All logical CPUs share one register file: per-core energy is not a
	// thing ("not possible to collect data for individual cores").
	s := newIdleSocket()
	drv := s.Driver(8)
	drv.Load()
	dev0, _ := drv.Open(0, msr.Root)
	dev7, _ := drv.Open(7, msr.Root)
	at := 5 * time.Second
	v0, _ := dev0.Read(msr.PkgEnergyStatus, at)
	v7, _ := dev7.Read(msr.PkgEnergyStatus, at)
	if v0 != v7 {
		t.Errorf("per-CPU counters differ: %d vs %d (scope must be socket)", v0, v7)
	}
}

func TestPP1NotUsefulOnServer(t *testing.T) {
	// Table II: PP1 is the uncore/iGPU plane, "not useful in server
	// platforms" — our model keeps it at a sub-watt constant.
	s := newGaussSocket()
	j := s.EnergyJoules(PP1, 100*time.Second)
	if j > 100 { // < 1 W average
		t.Errorf("PP1 energy = %v J over 100s; should be ~50 (0.5 W)", j)
	}
}

func BenchmarkCounterRead(b *testing.B) {
	s := newGaussSocket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Counter(PKG, time.Duration(i)*100*time.Microsecond)
	}
}

func BenchmarkMSRCollect(b *testing.B) {
	s := newGaussSocket()
	drv := s.Driver(1)
	drv.Load()
	dev, _ := drv.Open(0, msr.Root)
	col, _ := NewMSRCollector(dev, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Collect(time.Duration(i) * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
